#ifndef HIDO_TESTS_LINT_TESTDATA_LAYERING_SRC_CORE_FIXTURE_CORE_H_
#define HIDO_TESTS_LINT_TESTDATA_LAYERING_SRC_CORE_FIXTURE_CORE_H_

// The upward-include target: a clean core-layer header the common-layer
// fixture below it illegally includes.

namespace hido {

/// A core-layer symbol for the layering fixture.
int FixtureCoreValue();

}  // namespace hido

#endif  // HIDO_TESTS_LINT_TESTDATA_LAYERING_SRC_CORE_FIXTURE_CORE_H_
