// Deliberate metric-contract violations, one per line below:
//   * "fixture.undeclared" is registered but absent from the contract
//     block in ../obs/telemetry.h;
//   * "BadName" fails the dotted grammar (uppercase, single segment).
// "fixture.registered" is the clean control matching its contract entry.

namespace hido {

void Counter(const char*);

void RegisterFixtureMetrics() {
  Counter("fixture.registered");
  Counter("fixture.undeclared");
  Counter("BadName");
}

}  // namespace hido
