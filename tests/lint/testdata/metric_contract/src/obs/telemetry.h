#ifndef HIDO_TESTS_LINT_TESTDATA_METRIC_CONTRACT_SRC_OBS_TELEMETRY_H_
#define HIDO_TESTS_LINT_TESTDATA_METRIC_CONTRACT_SRC_OBS_TELEMETRY_H_

// Fixture contract header: the path ends with src/obs/telemetry.h, so the
// metric-contract rule reads this block when the fixture tree is linted on
// its own. `fixture.declared` is never registered anywhere in the tree —
// a deliberate dead entry.
//
// METRIC-CONTRACT-BEGIN
//   counter fixture.declared invariant dead on purpose
//   counter fixture.registered invariant
// METRIC-CONTRACT-END

#endif  // HIDO_TESTS_LINT_TESTDATA_METRIC_CONTRACT_SRC_OBS_TELEMETRY_H_
