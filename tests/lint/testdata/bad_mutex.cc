// Lint fixture: trips the no-raw-mutex rule. Never compiled.
#include <mutex>

std::mutex g_mu;

void Touch() { std::lock_guard<std::mutex> lock(g_mu); }
