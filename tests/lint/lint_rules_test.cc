#include "tools/lint/lint_rules.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hido {
namespace lint {
namespace {

std::vector<std::string> RuleNames(const std::vector<Finding>& findings) {
  std::vector<std::string> names;
  for (const Finding& f : findings) names.push_back(f.rule);
  return names;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> names = RuleNames(findings);
  return std::find(names.begin(), names.end(), rule) != names.end();
}

// ---------------------------------------------------------------------------
// no-exceptions

TEST(NoExceptionsRule, FlagsThrowTryCatch) {
  const std::string bad =
      "int F(int x) {\n"
      "  try {\n"
      "    if (x < 0) throw x;\n"
      "  } catch (int e) {\n"
      "    return e;\n"
      "  }\n"
      "  return x;\n"
      "}\n";
  const std::vector<Finding> findings = LintContent("src/core/f.cc", bad);
  EXPECT_TRUE(HasRule(findings, "no-exceptions"));
  // try{, throw, and catch( are three separate offending lines.
  const std::vector<std::string> names = RuleNames(findings);
  EXPECT_EQ(std::count(names.begin(), names.end(),
                       std::string("no-exceptions")),
            3);
}

TEST(NoExceptionsRule, SuppressedByAllowComment) {
  const std::string suppressed =
      "void G() {\n"
      "  throw 1;  // hido-lint: allow(no-exceptions)\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintContent("src/core/g.cc", suppressed), "no-exceptions"));
}

TEST(NoExceptionsRule, IgnoresCommentsStringsAndIdentifiers) {
  const std::string clean =
      "// a comment may say throw or try { freely\n"
      "const char* kMsg = \"throw\";\n"
      "int try_count = 0;  // identifier containing 'try'\n"
      "int rethrown_total = try_count;\n";
  EXPECT_TRUE(LintContent("src/core/h.cc", clean).empty());
}

// ---------------------------------------------------------------------------
// no-raw-random

TEST(NoRawRandomRule, FlagsRawEngines) {
  EXPECT_TRUE(HasRule(
      LintContent("src/core/a.cc", "std::mt19937 gen(1);\n"), "no-raw-random"));
  EXPECT_TRUE(HasRule(
      LintContent("src/core/a.cc", "std::mt19937_64 gen(1);\n"),
      "no-raw-random"));
  EXPECT_TRUE(HasRule(
      LintContent("src/core/a.cc", "std::random_device rd;\n"),
      "no-raw-random"));
  EXPECT_TRUE(HasRule(LintContent("src/core/a.cc", "int x = rand();\n"),
                      "no-raw-random"));
  EXPECT_TRUE(HasRule(LintContent("src/core/a.cc", "srand(42);\n"),
                      "no-raw-random"));
  EXPECT_TRUE(HasRule(
      LintContent("src/core/a.cc", "auto seed = time(nullptr);\n"),
      "no-raw-random"));
  EXPECT_TRUE(HasRule(
      LintContent("src/core/a.cc", "auto seed = std::time(0);\n"),
      "no-raw-random"));
}

TEST(NoRawRandomRule, AllowedInsideRngImplementation) {
  // common/rng.* is where the engine legitimately lives.
  EXPECT_TRUE(
      LintContent("src/common/rng.cc", "std::mt19937_64 engine_;\n").empty());
  EXPECT_TRUE(
      LintContent("src/common/rng.h", "#ifndef HIDO_COMMON_RNG_H_\n"
                                      "#define HIDO_COMMON_RNG_H_\n"
                                      "std::mt19937_64 engine_;\n"
                                      "#endif\n")
          .empty());
}

TEST(NoRawRandomRule, DoesNotFlagUnrelatedIdentifiers) {
  // Substrings like Elapsed"time(" must not match the time(nullptr) form,
  // and mt19937 inside a longer identifier is not an engine.
  const std::string clean =
      "double t = ElapsedTime();\n"
      "int not_mt19937_related = 0;\n"
      "auto when = timestamp(now);\n";
  EXPECT_TRUE(LintContent("src/core/b.cc", clean).empty());
}

TEST(NoRawRandomRule, SuppressedByAllowComment) {
  const std::string suppressed =
      "std::random_device rd;  // hido-lint: allow(no-raw-random)\n";
  EXPECT_TRUE(LintContent("src/core/c.cc", suppressed).empty());
}

// ---------------------------------------------------------------------------
// no-raw-mutex

TEST(NoRawMutexRule, FlagsStdMutexFamilyOutsideCommon) {
  EXPECT_TRUE(HasRule(LintContent("src/core/d.cc", "std::mutex mu;\n"),
                      "no-raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintContent("src/core/d.cc", "std::condition_variable cv;\n"),
      "no-raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintContent("tools/t.cc", "std::lock_guard<std::mutex> l(mu);\n"),
      "no-raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintContent("tests/x_test.cc", "std::unique_lock<std::mutex> l(mu);\n"),
      "no-raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintContent("src/grid/e.cc", "std::shared_mutex rw;\n"), "no-raw-mutex"));
}

TEST(NoRawMutexRule, AllowedOnlyInTheWrapperFile) {
  // The allowlist is an exact file, not a directory prefix: only
  // src/common/mutex.h may own raw primitives (it IS the wrapper).
  EXPECT_TRUE(
      LintContent("src/common/mutex.h",
                  "#ifndef HIDO_COMMON_MUTEX_H_\n"
                  "#define HIDO_COMMON_MUTEX_H_\n"
                  "std::mutex mu_;\n"
                  "#endif  // HIDO_COMMON_MUTEX_H_\n")
          .empty());
}

TEST(NoRawMutexRule, ExactFileAllowlistDoesNotLeakToSiblings) {
  // A new file dropped beside the wrapper gets no free pass — this is the
  // difference between allowed_files and allowed_prefixes.
  EXPECT_TRUE(HasRule(
      LintContent("src/common/mutex.cc", "std::mutex mu_;\n"),
      "no-raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintContent("src/common/mutex_extras.h", "std::mutex mu_;\n"),
      "no-raw-mutex"));
  // Nor does it match on a bare suffix from another directory.
  EXPECT_TRUE(HasRule(
      LintContent("src/grid/src/common/mutex.h", "std::mutex mu_;\n"),
      "no-raw-mutex"));
}

TEST(NoRawMutexRule, SharedCubeCacheStaysOnTheWrapper) {
  // The concurrent cube cache is the newest heavily-locked component; it
  // must keep using common::Mutex with zero escapes.
  const std::string clean =
      "common::Mutex mu;\n"
      "common::MutexLock lock(&mu);\n";
  EXPECT_TRUE(LintContent("src/grid/shared_cube_cache.cc", clean).empty());
  EXPECT_TRUE(HasRule(
      LintContent("src/grid/shared_cube_cache.cc", "std::mutex mu_;\n"),
      "no-raw-mutex"));
}

TEST(NoRawMutexRule, AnnotatedWrapperIsClean) {
  const std::string clean =
      "common::Mutex mu;\n"
      "common::MutexLock lock(&mu);\n";
  EXPECT_TRUE(LintContent("src/core/f.cc", clean).empty());
}

// ---------------------------------------------------------------------------
// simd-confinement

TEST(SimdConfinementRule, FlagsIntrinsicsOutsideKernelFiles) {
  EXPECT_TRUE(HasRule(
      LintContent("src/grid/fast.cc",
                  "__m256i v = _mm256_loadu_si256(ptr);\n"),
      "simd-confinement"));
  EXPECT_TRUE(HasRule(
      LintContent("src/core/x.cc", "#include <immintrin.h>\n"),
      "simd-confinement"));
  EXPECT_TRUE(HasRule(
      LintContent("src/common/bitset.cc",
                  "#if defined(__AVX2__)\nint x;\n#endif\n"),
      "simd-confinement"));
  EXPECT_TRUE(HasRule(
      LintContent("src/serve/s.cc",
                  "if (__builtin_cpu_supports(\"avx2\")) {}\n"),
      "simd-confinement"));
  EXPECT_TRUE(HasRule(
      LintContent("src/grid/neon.cc", "auto v = vcntq_u8(bytes);\n"),
      "simd-confinement"));
}

TEST(SimdConfinementRule, AllowedOnlyInKernelFiles) {
  EXPECT_TRUE(LintContent("src/common/bitset_kernels.cc",
                          "__m256i v = _mm256_and_si256(a, b);\n")
                  .empty());
  // Exact-file allowlist: a sibling gets no free pass.
  EXPECT_TRUE(HasRule(
      LintContent("src/common/bitset_kernels_extra.cc",
                  "__m256i v = _mm256_and_si256(a, b);\n"),
      "simd-confinement"));
}

TEST(SimdConfinementRule, DoesNotFlagKernelTableUsers) {
  // Routing through the dispatch table — the sanctioned pattern — is
  // clean, as are identifiers that merely mention a kernel kind.
  const std::string clean =
      "const BitsetKernels& k = ActiveKernels();\n"
      "size_t c = k.and_count(a, b, n);\n"
      "ScopedKernelOverride forced(KernelKind::kAvx2);\n";
  EXPECT_TRUE(LintContent("src/grid/cube_counter.cc", clean).empty());
}

TEST(SimdConfinementRule, CommentsAndStringsDoNotTrip) {
  const std::string prose =
      "// the avx2 path calls _mm256_and_si256 under the hood\n"
      "const char* doc = \"__AVX2__\";\n";
  EXPECT_TRUE(LintContent("src/core/doc.cc", prose).empty());
}

// ---------------------------------------------------------------------------
// no-stdio-in-core

TEST(NoStdioInCoreRule, FlagsStdioUnderCoreOnly) {
  const std::string bad = "std::cerr << \"oops\";\n";
  EXPECT_TRUE(HasRule(LintContent("src/core/g.cc", bad), "no-stdio-in-core"));
  EXPECT_TRUE(HasRule(LintContent("src/core/sub/g.cc", bad),
                      "no-stdio-in-core"));
  // The same line is fine outside src/core (tools print by design).
  EXPECT_TRUE(LintContent("tools/cli.cc", bad).empty());
  EXPECT_TRUE(LintContent("src/eval/table.cc", bad).empty());
}

TEST(NoStdioInCoreRule, FlagsPrintfFamily) {
  EXPECT_TRUE(HasRule(
      LintContent("src/core/h.cc", "printf(\"%d\", x);\n"),
      "no-stdio-in-core"));
  EXPECT_TRUE(HasRule(
      LintContent("src/core/h.cc", "fprintf(stderr, \"x\");\n"),
      "no-stdio-in-core"));
}

TEST(NoStdioInCoreRule, SuppressedByAllowComment) {
  const std::string suppressed =
      "std::cerr << x;  // hido-lint: allow(no-stdio-in-core)\n";
  EXPECT_TRUE(LintContent("src/core/i.cc", suppressed).empty());
}

// ---------------------------------------------------------------------------
// no-naked-new

TEST(NoNakedNewRule, FlagsBareNewEverywhere) {
  const std::string bad = "int* p = new int(42);\n";
  EXPECT_TRUE(HasRule(LintContent("src/core/n.cc", bad), "no-naked-new"));
  EXPECT_TRUE(HasRule(LintContent("tools/t.cc", bad), "no-naked-new"));
  EXPECT_TRUE(HasRule(LintContent("tests/x_test.cc", bad), "no-naked-new"));
  EXPECT_TRUE(HasRule(
      LintContent("src/obs/o.cc", "auto* a = new Widget[8];\n"),
      "no-naked-new"));
}

TEST(NoNakedNewRule, IgnoresCommentsStringsAndIdentifiers) {
  const std::string clean =
      "// a comment may mention new freely\n"
      "const char* kMsg = \"brand new\";\n"
      "int new_shard = renewals + newest;\n"
      "auto p = std::make_unique<int>(42);\n";
  EXPECT_TRUE(LintContent("src/core/o.cc", clean).empty());
}

TEST(NoNakedNewRule, SuppressedByAllowComment) {
  const std::string suppressed =
      "static Tracer* const t = new Tracer();  "
      "// hido-lint: allow(no-naked-new)\n";
  EXPECT_TRUE(LintContent("src/obs/trace.cc", suppressed).empty());
}

// ---------------------------------------------------------------------------
// header-guard

TEST(HeaderGuardRule, ExpectedGuardDerivation) {
  EXPECT_EQ(ExpectedHeaderGuard("src/common/mutex.h"),
            "HIDO_COMMON_MUTEX_H_");
  EXPECT_EQ(ExpectedHeaderGuard("src/core/best_set.h"),
            "HIDO_CORE_BEST_SET_H_");
  EXPECT_EQ(ExpectedHeaderGuard("tools/lint/lint_rules.h"),
            "HIDO_TOOLS_LINT_LINT_RULES_H_");
}

TEST(HeaderGuardRule, AcceptsCanonicalGuard) {
  const std::string good =
      "#ifndef HIDO_CORE_WIDGET_H_\n"
      "#define HIDO_CORE_WIDGET_H_\n"
      "#endif  // HIDO_CORE_WIDGET_H_\n";
  EXPECT_TRUE(LintContent("src/core/widget.h", good).empty());
}

TEST(HeaderGuardRule, FlagsWrongOrMissingGuard) {
  const std::string wrong =
      "#ifndef WIDGET_H\n"
      "#define WIDGET_H\n"
      "#endif\n";
  const std::vector<Finding> findings =
      LintContent("src/core/widget.h", wrong);
  ASSERT_TRUE(HasRule(findings, "header-guard"));
  EXPECT_EQ(findings[0].line, 0u) << "header-guard is a file-level finding";
  EXPECT_TRUE(HasRule(LintContent("src/core/empty.h", "int x;\n"),
                      "header-guard"));
  // .cc files have no guard requirement.
  EXPECT_TRUE(LintContent("src/core/widget.cc", "int x;\n").empty());
}

TEST(HeaderGuardRule, SuppressedByAllowComment) {
  const std::string suppressed =
      "#pragma once  // hido-lint: allow(header-guard)\n"
      "int x;\n";
  EXPECT_TRUE(LintContent("src/core/pragma.h", suppressed).empty());
}

// ---------------------------------------------------------------------------
// include-order

TEST(IncludeOrderRule, AcceptsConventionalLayout) {
  const std::string good =
      "#include \"core/widget.h\"\n"  // own header first: new block below
      "\n"
      "#include <string>\n"
      "#include <vector>\n"
      "\n"
      "#include \"common/status.h\"\n"
      "#include \"core/best_set.h\"\n";
  EXPECT_TRUE(LintContent("src/core/widget.cc", good).empty());
}

TEST(IncludeOrderRule, FlagsUnsortedBlock) {
  const std::string bad =
      "#include <vector>\n"
      "#include <string>\n";
  const std::vector<Finding> findings = LintContent("src/core/j.cc", bad);
  ASSERT_TRUE(HasRule(findings, "include-order"));
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(IncludeOrderRule, FlagsMixedStylesInOneBlock) {
  const std::string bad =
      "#include <vector>\n"
      "#include \"common/status.h\"\n";
  EXPECT_TRUE(HasRule(LintContent("src/core/k.cc", bad), "include-order"));
}

TEST(IncludeOrderRule, BlankLineStartsANewBlock) {
  // Unsorted across a blank line is fine: blocks are independent.
  const std::string good =
      "#include <vector>\n"
      "\n"
      "#include <algorithm>\n";
  EXPECT_TRUE(LintContent("src/core/l.cc", good).empty());
}

TEST(IncludeOrderRule, SuppressedByAllowComment) {
  const std::string suppressed =
      "#include <vector>\n"
      "#include <string>  // hido-lint: allow(include-order)\n";
  EXPECT_TRUE(LintContent("src/core/m.cc", suppressed).empty());
}

// ---------------------------------------------------------------------------
// doc-comment

namespace {
const char kServeHeaderPrologue[] =
    "#ifndef HIDO_SERVE_WIDGET_H_\n"
    "#define HIDO_SERVE_WIDGET_H_\n"
    "namespace hido {\n"
    "namespace serve {\n";
const char kServeHeaderEpilogue[] =
    "}  // namespace serve\n"
    "}  // namespace hido\n"
    "#endif  // HIDO_SERVE_WIDGET_H_\n";

std::vector<Finding> LintServeHeader(const std::string& body) {
  return LintContent("src/serve/widget.h",
                     kServeHeaderPrologue + body + kServeHeaderEpilogue);
}
}  // namespace

TEST(DocCommentRule, FlagsUndocumentedPublicDeclarations) {
  // An undocumented class at namespace scope and an undocumented public
  // method are two separate findings.
  const std::vector<Finding> findings = LintServeHeader(
      "class Widget {\n"
      " public:\n"
      "  int Size() const;\n"
      "};\n");
  const std::vector<std::string> names = RuleNames(findings);
  EXPECT_EQ(
      std::count(names.begin(), names.end(), std::string("doc-comment")), 2);
}

TEST(DocCommentRule, AcceptsAdjacentAndTrailingDocs) {
  EXPECT_TRUE(LintServeHeader(
                  "/// A documented widget.\n"
                  "class Widget {\n"
                  " public:\n"
                  "  /// Its size.\n"
                  "  int Size() const;\n"
                  "  int count = 0;  ///< trailing member doc\n"
                  "};\n"
                  "/// Free function doc.\n"
                  "int MakeWidget();\n")
                  .empty());
}

TEST(DocCommentRule, PlainCommentDoesNotCount) {
  EXPECT_TRUE(HasRule(LintServeHeader("// not a doc comment\n"
                                      "int MakeWidget();\n"),
                      "doc-comment"));
}

TEST(DocCommentRule, PrivateAndNestedHiddenScopesAreExempt) {
  // Private members, members of a struct nested in a private section, and
  // function-local code need no docs.
  EXPECT_TRUE(LintServeHeader(
                  "/// Documented.\n"
                  "class Widget {\n"
                  " public:\n"
                  "  /// Documented accessor (the body line is exempt).\n"
                  "  int Size() const {\n"
                  "    int local = 0;\n"
                  "    return local;\n"
                  "  }\n"
                  "\n"
                  " private:\n"
                  "  struct Impl {\n"
                  "    int undocumented_field = 0;\n"
                  "  };\n"
                  "  int size_ = 0;\n"
                  "};\n")
                  .empty());
}

TEST(DocCommentRule, StructuralNoiseIsExempt) {
  // Access labels, defaulted/deleted members, friends, using-aliases,
  // forward declarations, and multi-line continuations produce no
  // findings of their own.
  EXPECT_TRUE(LintServeHeader(
                  "class Helper;\n"
                  "/// Documented.\n"
                  "class Widget {\n"
                  " public:\n"
                  "  Widget() = default;\n"
                  "  Widget(const Widget&) = delete;\n"
                  "  using Ptr = Widget*;\n"
                  "  friend class Helper;\n"
                  "  /// Spans lines: only the first line is checked.\n"
                  "  int Measure(int a,\n"
                  "              int b) const;\n"
                  "};\n")
                  .empty());
}

TEST(DocCommentRule, AppliesToEverySrcHeaderButNotSourcesOrTools) {
  const std::string undocumented =
      "#ifndef HIDO_CORE_WIDGET_H_\n"
      "#define HIDO_CORE_WIDGET_H_\n"
      "namespace hido {\n"
      "int Undocumented();\n"
      "}  // namespace hido\n"
      "#endif  // HIDO_CORE_WIDGET_H_\n";
  // Every src/ header is covered, not just src/serve/.
  EXPECT_TRUE(
      HasRule(LintContent("src/core/widget.h", undocumented), "doc-comment"));
  EXPECT_TRUE(
      HasRule(LintContent("src/serve/widget.h", undocumented), "doc-comment"));
  // .cc files are exempt: the rule covers the API surface.
  EXPECT_TRUE(
      LintContent("src/serve/widget.cc", "int Undocumented() { return 0; }\n")
          .empty());
  // Headers outside any src/ segment are exempt (tools, tests harnesses).
  EXPECT_FALSE(HasRule(LintContent("tools/lint/widget.h", undocumented),
                       "doc-comment"));
  // The testdata fixture path contains src/, so it IS covered.
  EXPECT_TRUE(HasRule(
      LintContent("tests/lint/testdata/src/serve/widget.h",
                  "#ifndef HIDO_TESTS_LINT_TESTDATA_SRC_SERVE_WIDGET_H_\n"
                  "#define HIDO_TESTS_LINT_TESTDATA_SRC_SERVE_WIDGET_H_\n"
                  "namespace hido {\n"
                  "int Undocumented();\n"
                  "}  // namespace hido\n"
                  "#endif\n"),
      "doc-comment"));
}

TEST(DocCommentRule, IgnoresBackslashContinuedMacroBodies) {
  // A multi-line #define's continuation lines are part of the directive,
  // not namespace-scope declarations.
  const std::string macro_header =
      "#ifndef HIDO_CORE_M_H_\n"
      "#define HIDO_CORE_M_H_\n"
      "namespace hido {\n"
      "#define HIDO_RETRY(expr)   \\\n"
      "  do {                     \\\n"
      "    (void)(expr);          \\\n"
      "  } while (0)\n"
      "}  // namespace hido\n"
      "#endif  // HIDO_CORE_M_H_\n";
  EXPECT_FALSE(HasRule(LintContent("src/core/m.h", macro_header),
                       "doc-comment"));
}

TEST(DocCommentRule, SuppressedByAllowComment) {
  EXPECT_TRUE(LintServeHeader(
                  "int Odd();  // hido-lint: allow(doc-comment)\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Stripper

TEST(StripCommentsAndStrings, RemovesCommentsPreservingLines) {
  const std::string source =
      "int a;  // trailing throw\n"
      "/* block\n"
      "   spanning throw\n"
      "   lines */ int b;\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
  EXPECT_EQ(stripped.find("throw"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(StripCommentsAndStrings, EmptiesStringAndCharLiterals) {
  const std::string source =
      "const char* s = \"throw \\\" inside\";\n"
      "char c = '\\'';\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("throw"), std::string::npos);
  EXPECT_EQ(stripped.find("inside"), std::string::npos);
}

TEST(StripCommentsAndStrings, HandlesRawStrings) {
  const std::string source =
      "auto re = \"x\";\n"
      "auto raw = R\"(throw inside ) quote \" still inside)\";\n"
      "int after = 1;\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("throw"), std::string::npos);
  EXPECT_NE(stripped.find("int after = 1;"), std::string::npos);
}

TEST(StripCommentsAndStrings, HandlesDelimitedRawStrings) {
  const std::string source =
      "auto raw = R\"xy(body with )\" fake end)xy\";\n"
      "int after = 2;\n";
  const std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.find("body"), std::string::npos);
  EXPECT_EQ(stripped.find("fake end"), std::string::npos);
  EXPECT_NE(stripped.find("int after = 2;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule table

TEST(RuleTable, ListsEveryRuleOnce) {
  std::vector<std::string> names;
  for (const RuleInfo& rule : Rules()) names.push_back(rule.name);
  const std::vector<std::string> expected = {
      "no-exceptions", "no-raw-random",    "no-raw-mutex",
      "no-stdio-in-core", "no-naked-new",  "simd-confinement",
      "header-guard",  "include-order",    "doc-comment",
      "layering",      "metric-contract"};
  EXPECT_EQ(names, expected);
}

TEST(RuleTable, SuppressionTagIsPerRule) {
  EXPECT_TRUE(IsSuppressed("x;  // hido-lint: allow(no-exceptions)",
                           "no-exceptions"));
  EXPECT_FALSE(IsSuppressed("x;  // hido-lint: allow(no-exceptions)",
                            "no-raw-random"));
  EXPECT_FALSE(IsSuppressed("x;  // unrelated comment", "no-exceptions"));
}

}  // namespace
}  // namespace lint
}  // namespace hido
