#include "tools/lint/project_model.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/cross_file_rules.h"

namespace hido {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Include-edge extraction

TEST(ExtractIncludes, QuotedAndAngleStylesWithLineNumbers) {
  const FileIndex file = BuildFileIndex("src/core/a.cc",
                                        "#include \"common/rng.h\"\n"
                                        "#include <vector>\n"
                                        "#  include \"grid/grid_model.h\"\n");
  ASSERT_EQ(file.includes.size(), 3u);
  EXPECT_EQ(file.includes[0].style, '"');
  EXPECT_EQ(file.includes[0].target, "common/rng.h");
  EXPECT_EQ(file.includes[0].line, 1u);
  EXPECT_EQ(file.includes[1].style, '<');
  EXPECT_EQ(file.includes[1].target, "vector");
  EXPECT_EQ(file.includes[1].line, 2u);
  // Whitespace between '#' and 'include' is legal and still an edge.
  EXPECT_EQ(file.includes[2].target, "grid/grid_model.h");
  EXPECT_EQ(file.includes[2].line, 3u);
}

TEST(ExtractIncludes, KeepsConditionalIncludes) {
  // Includes inside preprocessor conditionals are still edges: the linter
  // cannot evaluate the condition, so it assumes the dependency exists.
  const FileIndex file = BuildFileIndex("src/core/a.cc",
                                        "#ifdef HIDO_EXTRA\n"
                                        "#include \"core/detector.h\"\n"
                                        "#endif\n");
  ASSERT_EQ(file.includes.size(), 1u);
  EXPECT_EQ(file.includes[0].target, "core/detector.h");
}

TEST(ExtractIncludes, IgnoresCommentedOutIncludes) {
  const FileIndex file =
      BuildFileIndex("src/core/a.cc",
                     "// #include \"core/detector.h\"\n"
                     "/* #include \"core/objective.h\" */\n"
                     "/*\n#include \"core/scoring.h\"\n*/\n");
  EXPECT_TRUE(file.includes.empty());
}

TEST(ExtractIncludes, IgnoresIncludesInsideStringLiterals) {
  // lint_rules_test.cc embeds lint-fixture code in string literals; the
  // directives inside them must not become include edges.
  const FileIndex file = BuildFileIndex(
      "src/core/a.cc",
      "const char* kSnippet = \"#include \\\"core/detector.h\\\"\";\n");
  EXPECT_TRUE(file.includes.empty());
}

TEST(ExtractIncludes, IgnoresIncludesInsideRawStrings) {
  const FileIndex file =
      BuildFileIndex("src/core/a.cc",
                     "const char* kSnippet = R\"(\n"
                     "#include \"core/detector.h\"\n"
                     ")\";\n");
  EXPECT_TRUE(file.includes.empty());
}

// ---------------------------------------------------------------------------
// Project index resolution

TEST(ProjectIndex, ResolvesFullPathAndSrcRelativeSpellings) {
  std::vector<FileIndex> files;
  files.push_back(BuildFileIndex("src/common/rng.h", "int x;\n"));
  files.push_back(BuildFileIndex("tools/lint/sarif.h", "int y;\n"));
  const ProjectIndex index = BuildProjectIndex(std::move(files));

  const size_t rng = index.Resolve("common/rng.h");
  ASSERT_NE(rng, ProjectIndex::npos);
  EXPECT_EQ(index.files[rng].path, "src/common/rng.h");
  EXPECT_EQ(index.Resolve("src/common/rng.h"), rng);
  // Files outside src/ resolve only by their full path.
  const size_t sarif = index.Resolve("tools/lint/sarif.h");
  ASSERT_NE(sarif, ProjectIndex::npos);
  EXPECT_EQ(index.files[sarif].path, "tools/lint/sarif.h");
  EXPECT_EQ(index.Resolve("lint/sarif.h"), ProjectIndex::npos);
  EXPECT_EQ(index.Resolve("vector"), ProjectIndex::npos);
}

TEST(ProjectIndex, FixtureTreesResolveByInnerSrcSuffix) {
  std::vector<FileIndex> files;
  files.push_back(BuildFileIndex(
      "tests/lint/testdata/layering/src/core/fixture_core.h", "int x;\n"));
  const ProjectIndex index = BuildProjectIndex(std::move(files));
  EXPECT_NE(index.Resolve("core/fixture_core.h"), ProjectIndex::npos);
}

// ---------------------------------------------------------------------------
// Metric-literal extraction

std::vector<MetricLiteral> Metrics(const std::string& source) {
  return BuildFileIndex("src/core/m.cc", source).metrics;
}

TEST(ExtractMetricLiterals, FindsAllThreeKindsAndRegistryForms) {
  const std::vector<MetricLiteral> metrics =
      Metrics("void F() {\n"
              "  Counter(\"search.runs\");\n"
              "  Gauge(\"pool.workers\");\n"
              "  Histogram(\"serve.batch.size\");\n"
              "  registry.GetCounter(\"search.evaluations\");\n"
              "}\n");
  ASSERT_EQ(metrics.size(), 4u);
  EXPECT_EQ(metrics[0].kind, "counter");
  EXPECT_EQ(metrics[0].pattern, "search.runs");
  EXPECT_EQ(metrics[0].line, 2u);
  EXPECT_EQ(metrics[1].kind, "gauge");
  EXPECT_EQ(metrics[2].kind, "histogram");
  EXPECT_EQ(metrics[3].kind, "counter");
  EXPECT_EQ(metrics[3].pattern, "search.evaluations");
}

TEST(ExtractMetricLiterals, HandlesLineBreaksAndAdjacentLiterals) {
  // A name split across a line break via adjacent string literals is one
  // registration with the line of the opening call.
  const std::vector<MetricLiteral> metrics =
      Metrics("void F() {\n"
              "  Counter(\n"
              "      \"cube.cache.\"\n"
              "      \"shared.hits\");\n"
              "}\n");
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].pattern, "cube.cache.shared.hits");
}

TEST(ExtractMetricLiterals, NormalizesDynamicSegments) {
  const std::vector<MetricLiteral> metrics =
      Metrics("void F(const std::string& endpoint, const char* cause) {\n"
              "  Counter(StrFormat(\"serve.%s.requests\", endpoint));\n"
              "  Counter(std::string(\"run.stops.\") + cause);\n"
              "}\n");
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].pattern, "serve.<dynamic>.requests");
  EXPECT_EQ(metrics[1].pattern, "run.stops.<dynamic>");
}

TEST(ExtractMetricLiterals, IgnoresCommentsAndNonSrcFiles) {
  EXPECT_TRUE(Metrics("// Counter(\"search.runs\")\n").empty());
  // Test code may spell metric-looking literals freely: only files under
  // a src/ segment are scanned at all.
  const FileIndex test_file = BuildFileIndex(
      "tests/core/m_test.cc", "void F() { Counter(\"search.runs\"); }\n");
  EXPECT_TRUE(test_file.metrics.empty());
}

// ---------------------------------------------------------------------------
// Layer spec parsing and the layering rule

const char kSpec[] =
    "layer common src/common/\n"
    "layer core   src/core/\n"
    "layer tools  tools/\n"
    "allow core  -> common\n"
    "allow tools -> core\n";

TEST(ParseLayerSpec, BuildsTransitiveClosure) {
  LayerSpec spec;
  std::string error;
  ASSERT_TRUE(ParseLayerSpec(kSpec, spec, error)) << error;
  // tools reaches core directly and common transitively.
  EXPECT_EQ(spec.reachable["tools"].count("common"), 1u);
  EXPECT_EQ(spec.reachable["common"].count("core"), 0u);
  EXPECT_EQ(LayerOf(spec, "src/core/detector.h"), "core");
  EXPECT_EQ(LayerOf(spec, "tests/lint/testdata/x/src/core/a.h"), "core");
  EXPECT_EQ(LayerOf(spec, "PAPER.md"), "");
}

TEST(ParseLayerSpec, RejectsUnknownAndDuplicateLayers) {
  LayerSpec spec;
  std::string error;
  EXPECT_FALSE(ParseLayerSpec("allow a -> b\n", spec, error));
  EXPECT_FALSE(ParseLayerSpec(
      "layer a src/a/\nlayer a src/b/\n", spec, error));
}

ProjectIndex IndexOf(std::vector<FileIndex> files) {
  return BuildProjectIndex(std::move(files));
}

TEST(CheckLayering, ReportsUpwardIncludeAtItsLine) {
  LayerSpec spec;
  std::string error;
  ASSERT_TRUE(ParseLayerSpec(kSpec, spec, error)) << error;
  const ProjectIndex index = IndexOf({
      BuildFileIndex("src/common/bad.cc",
                     "// comment\n#include \"core/detector.h\"\n"),
      BuildFileIndex("src/core/detector.h", "int x;\n"),
  });
  const std::vector<Finding> findings = CheckLayering(index, spec);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].path, "src/common/bad.cc");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("'core'"), std::string::npos);
}

TEST(CheckLayering, ReportsCycleWithFullPath) {
  LayerSpec spec;
  std::string error;
  ASSERT_TRUE(ParseLayerSpec(kSpec, spec, error)) << error;
  // A three-file SCC inside one layer: a -> b -> c -> a.
  const ProjectIndex index = IndexOf({
      BuildFileIndex("src/core/a.h", "#include \"core/b.h\"\n"),
      BuildFileIndex("src/core/b.h", "#include \"core/c.h\"\n"),
      BuildFileIndex("src/core/c.h", "#include \"core/a.h\"\n"),
  });
  const std::vector<Finding> findings = CheckLayering(index, spec);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].message.find("include cycle: src/core/a.h -> "
                                     "src/core/b.h -> src/core/c.h -> "
                                     "src/core/a.h"),
            std::string::npos);
}

TEST(CheckLayering, CleanGraphAndSelfLayerIncludesPass) {
  LayerSpec spec;
  std::string error;
  ASSERT_TRUE(ParseLayerSpec(kSpec, spec, error)) << error;
  const ProjectIndex index = IndexOf({
      BuildFileIndex("src/core/a.h",
                     "#include \"core/b.h\"\n#include \"common/rng.h\"\n"),
      BuildFileIndex("src/core/b.h", "#include <vector>\n"),
      BuildFileIndex("src/common/rng.h", "int x;\n"),
  });
  EXPECT_TRUE(CheckLayering(index, spec).empty());
}

// ---------------------------------------------------------------------------
// Metric contract parsing and the contract rule

TEST(ParseMetricContract, ParsesEntriesAndFlagsMalformedLines) {
  std::vector<Finding> findings;
  const std::vector<MetricContractEntry> entries = ParseMetricContract(
      "src/obs/telemetry.h",
      "// METRIC-CONTRACT-BEGIN\n"
      "//   counter search.runs invariant\n"
      "//   gauge pool.workers variant snapshot of the shared pool\n"
      "//   histogram serve.<endpoint>.latency_seconds variant\n"
      "//   counter Bad.Grammar invariant\n"
      "//   counter search.runs sometimes\n"
      "// METRIC-CONTRACT-END\n",
      findings);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].kind, "counter");
  EXPECT_EQ(entries[0].pattern, "search.runs");
  EXPECT_TRUE(entries[0].invariant);
  EXPECT_FALSE(entries[1].invariant);
  EXPECT_EQ(entries[2].pattern, "serve.<endpoint>.latency_seconds");
  // The bad-grammar line and the bad-variance line each yield a finding.
  EXPECT_EQ(findings.size(), 2u);
}

TEST(ParseMetricContract, MissingBlockIsAFinding) {
  std::vector<Finding> findings;
  const std::vector<MetricContractEntry> entries =
      ParseMetricContract("src/obs/telemetry.h", "// no markers here\n",
                          findings);
  EXPECT_TRUE(entries.empty());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-contract");
}

TEST(IsValidMetricPattern, EnforcesDottedGrammar) {
  EXPECT_TRUE(IsValidMetricPattern("search.runs", false));
  EXPECT_TRUE(IsValidMetricPattern("cube.cache.shared.prefix_hits", false));
  EXPECT_FALSE(IsValidMetricPattern("single", false));
  EXPECT_FALSE(IsValidMetricPattern("Bad.Name", false));
  EXPECT_FALSE(IsValidMetricPattern("trailing.", false));
  EXPECT_FALSE(IsValidMetricPattern("1starts.with_digit", false));
  EXPECT_TRUE(IsValidMetricPattern("serve.<endpoint>.requests", true));
  EXPECT_FALSE(IsValidMetricPattern("serve.<endpoint>.requests", false));
}

TEST(CheckMetricContract, MatchesPlaceholdersBothWays) {
  const ProjectIndex index = IndexOf({
      BuildFileIndex("src/obs/telemetry.h",
                     "// METRIC-CONTRACT-BEGIN\n"
                     "//   counter run.stops.<cause> invariant\n"
                     "//   counter search.runs invariant\n"
                     "// METRIC-CONTRACT-END\n"),
      BuildFileIndex("src/core/m.cc",
                     "void F(const char* cause) {\n"
                     "  Counter(std::string(\"run.stops.\") + cause);\n"
                     "  Counter(\"search.runs\");\n"
                     "}\n"),
  });
  EXPECT_TRUE(CheckMetricContract(index).empty());
}

TEST(CheckMetricContract, FlagsUndeclaredAndDeadEntries) {
  const ProjectIndex index = IndexOf({
      BuildFileIndex("src/obs/telemetry.h",
                     "// METRIC-CONTRACT-BEGIN\n"
                     "//   counter docs.only invariant\n"
                     "// METRIC-CONTRACT-END\n"),
      BuildFileIndex("src/core/m.cc",
                     "void F() { Counter(\"code.only\"); }\n"),
  });
  const std::vector<Finding> findings = CheckMetricContract(index);
  ASSERT_EQ(findings.size(), 2u);
  bool saw_undeclared = false;
  bool saw_dead = false;
  for (const Finding& f : findings) {
    if (f.message.find("code.only") != std::string::npos) {
      saw_undeclared = true;
      EXPECT_EQ(f.path, "src/core/m.cc");
    }
    if (f.message.find("dead contract entry") != std::string::npos) {
      saw_dead = true;
      EXPECT_EQ(f.path, "src/obs/telemetry.h");
      EXPECT_EQ(f.line, 2u);
    }
  }
  EXPECT_TRUE(saw_undeclared);
  EXPECT_TRUE(saw_dead);
}

}  // namespace
}  // namespace lint
}  // namespace hido
