// Chaos soak for the serving stack: the server runs with a FaultInjector
// installed on its event-loop thread (scripted accept/read/write faults —
// EINTR, short writes, ECONNRESET, EMFILE) while scripted clients drive
// it. The invariant under test: no *surviving* connection ever observes a
// lost, duplicated, or out-of-order response, evicted/shed clients get the
// documented error line, the overload counters land on exact values, and
// the terminal state is a clean drain.
//
// Determinism notes: faults are addressed by per-op syscall-call counts,
// so the test keeps the fault-sensitive traffic strictly serial (one
// request, one response) while faults that are transparent wherever they
// land (EINTR retries, short writes) ride on pipelined bursts.

#include "serve/server.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "common/string_util.h"
#include "core/detector.h"
#include "data/generators/synthetic.h"
#include "serve/snapshot.h"

namespace hido {
namespace serve {
namespace {

GeneratedDataset MakeData() {
  SubspaceOutlierConfig config;
  config.num_points = 300;
  config.num_dims = 8;
  config.num_groups = 3;
  config.num_outliers = 3;
  config.seed = 9;
  return GenerateSubspaceOutliers(config);
}

std::shared_ptr<ModelSnapshot> FitSnapshot(const GeneratedDataset& g,
                                           uint64_t seed = 3) {
  DetectorConfig config;
  config.phi = 5;
  config.target_dim = 2;
  config.num_projections = 8;
  config.evolution.restarts = 4;
  config.seed = seed;
  return std::make_shared<ModelSnapshot>(
      MakeSnapshot(OutlierDetector(config).Detect(g.data), g.data, seed));
}

std::string CsvRow(const Dataset& data, size_t row) {
  std::vector<std::string> fields;
  for (const double v : data.Row(row)) {
    fields.push_back(StrFormat("%.17g", v));
  }
  return Join(fields, ",");
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).Value();
}

// A server on its own thread with the given fault script armed on that
// thread (and only that thread: the test's client I/O stays clean).
class ChaosServer {
 public:
  ChaosServer(ScoreService& service, ServerOptions options,
              const std::string& fault_script)
      : server_(service, std::move(options)) {
    Result<FaultInjector> injector = FaultInjector::Parse(fault_script);
    EXPECT_TRUE(injector.ok()) << injector.status().ToString();
    injector_ = std::move(injector.value());
    const Status started = server_.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] {
      FaultInjector::InstallOnThisThread(&injector_);
      run_status_ = server_.Run();
      FaultInjector::InstallOnThisThread(nullptr);
    });
  }

  ~ChaosServer() {
    if (thread_.joinable()) thread_.join();
    // A clean drain: whatever the fault schedule did, Run() must end OK.
    EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
  }

  int port() const { return server_.port(); }
  const FaultInjector& injector() const { return injector_; }

  OwnedFd Connect() {
    Result<OwnedFd> client = ConnectTcp("127.0.0.1", server_.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client.value());
  }

 private:
  SocketServer server_;
  FaultInjector injector_;
  std::thread thread_;
  Status run_status_;
};

std::string Request(int fd, const std::string& line, std::string* carry) {
  EXPECT_TRUE(WriteAll(fd, line + "\n").ok());
  Result<std::string> response = ReadLine(fd, carry);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return response.ok() ? response.value() : std::string();
}

// EINTR on reads and writes plus scripted short writes must be absorbed by
// the helpers: every serial request is answered correctly and every
// scripted fault actually fired.
TEST(ServerChaosTest, EintrAndShortWriteFaultsAreTransparent) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  // Serial traffic: request i is read call i (+1 per EINTR retry), and
  // each response flush starts a fresh WriteSome loop.
  const std::string script =
      "read@2=EINTR;read@5=EINTR;write@1=short:5;write@3=EINTR;"
      "write@5=short:1";
  {
    ChaosServer server(service, options, script);
    OwnedFd client = server.Connect();
    std::string carry;
    for (size_t i = 0; i < 10; ++i) {
      const std::string line = "score " + CsvRow(g.data, i);
      EXPECT_EQ(Request(client.get(), line, &carry), service.Handle(line))
          << "request " << i;
    }
    stop.RequestCancel();
  }
}

// A scripted connection reset kills exactly the victim; the surviving
// connection's stream is untouched before, during, and after.
TEST(ServerChaosTest, ConnectionResetClosesOnlyTheVictim) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  // Survivor requests consume reads 1..3; the victim's only request is
  // read call 4.
  {
    ChaosServer server(service, options, "read@4=ECONNRESET");
    OwnedFd survivor = server.Connect();
    std::string survivor_carry;
    for (size_t i = 0; i < 3; ++i) {
      const std::string line = "score " + CsvRow(g.data, i);
      EXPECT_EQ(Request(survivor.get(), line, &survivor_carry),
                service.Handle(line));
    }

    OwnedFd victim = server.Connect();
    ASSERT_TRUE(WriteAll(victim.get(), "ping\n").ok());
    std::string victim_carry;
    // The injected ECONNRESET makes the server drop the victim without a
    // response: the client observes EOF (or a reset), never a partial or
    // garbled line.
    Result<std::string> lost = ReadLine(victim.get(), &victim_carry);
    EXPECT_FALSE(lost.ok());

    for (size_t i = 3; i < 6; ++i) {
      const std::string line = "score " + CsvRow(g.data, i);
      EXPECT_EQ(Request(survivor.get(), line, &survivor_carry),
                service.Handle(line));
    }
    EXPECT_EQ(server.injector().fired(), 1u);
    stop.RequestCancel();
  }
}

// EMFILE on accept is shed and counted, never fatal: established
// connections keep working and later accepts succeed.
TEST(ServerChaosTest, AcceptFaultIsCountedAndSurvived) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  const uint64_t errors_before = CounterValue("serve.accept.errors");
  // Accept call 1 admits the first client; call 2 (the queue-drain probe)
  // hits the scripted EMFILE instead of EAGAIN.
  {
    ChaosServer server(service, options, "accept@2=EMFILE");
    OwnedFd first = server.Connect();
    std::string first_carry;
    EXPECT_EQ(Request(first.get(), "ping", &first_carry), "ok pong");
    EXPECT_EQ(CounterValue("serve.accept.errors"), errors_before + 1);

    OwnedFd second = server.Connect();
    std::string second_carry;
    EXPECT_EQ(Request(second.get(), "ping", &second_carry), "ok pong");
    stop.RequestCancel();
  }
}

// The headline soak: pipelined bursts under scattered EINTR/short-write
// faults, a connection-reset victim, a mid-stream model swap, and a
// protocol shutdown. The survivor must see every response, in order, byte
// identical to a fault-free service; the shed/eviction counters must not
// move; and the drain must complete cleanly.
TEST(ServerChaosTest, SoakNoLostDuplicatedOrReorderedResponses) {
  const GeneratedDataset g = MakeData();
  ScoreServiceOptions service_options;
  service_options.num_threads = 2;
  ScoreService service(service_options);
  service.Publish(FitSnapshot(g, /*seed=*/3));
  ScoreService oracle;  // answers expected responses, generation-for-generation
  oracle.Publish(FitSnapshot(g, /*seed=*/3));

  const std::string swap_path = ::testing::TempDir() + "/chaos_swap.hido";
  ASSERT_TRUE(SaveSnapshot(*FitSnapshot(g, /*seed=*/7), swap_path).ok());

  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.max_batch = 8;  // several framing rounds per burst
  const uint64_t shed_conns_before = CounterValue("serve.shed.connections");
  const uint64_t shed_reqs_before = CounterValue("serve.shed.requests");
  const uint64_t evictions_before = CounterValue("serve.evictions");
  // Write-side faults are transparent wherever they land, so they may be
  // scattered across the whole soak; the one read fault is pinned to the
  // victim's single serial request (read call 1).
  const std::string script =
      "read@1=ECONNRESET;"
      "write@2=short:3;write@5=EINTR;write@9=short:1;write@13=EINTR;"
      "write@21..23=short:7;write@30=EINTR";
  {
    ChaosServer server(service, options, script);

    // Phase 1: the victim connects, sends one request, and is reset.
    OwnedFd victim = server.Connect();
    ASSERT_TRUE(WriteAll(victim.get(), "ping\n").ok());
    std::string victim_carry;
    EXPECT_FALSE(ReadLine(victim.get(), &victim_carry).ok());

    // Phase 2: the survivor pipelines bursts; an admin connection swaps
    // the model between bursts. Expected responses come from the oracle
    // service, swapped in lockstep.
    OwnedFd survivor = server.Connect();
    OwnedFd admin = server.Connect();
    std::string survivor_carry;
    std::string admin_carry;
    size_t responses_seen = 0;
    for (int pass = 0; pass < 3; ++pass) {
      if (pass == 1) {
        const std::string swapped =
            Request(admin.get(), "swap " + swap_path, &admin_carry);
        EXPECT_EQ(swapped.substr(0, 16), "ok swapped gen=2") << swapped;
        oracle.Publish(FitSnapshot(g, /*seed=*/7));
      }
      std::string burst;
      std::vector<std::string> expected;
      for (size_t i = 0; i < 40; ++i) {
        const std::string line =
            "score " + CsvRow(g.data, (pass * 40 + i) % g.data.num_rows());
        burst += line + "\n";
        expected.push_back(oracle.Handle(line));
      }
      ASSERT_TRUE(WriteAll(survivor.get(), burst).ok());
      for (size_t i = 0; i < 40; ++i) {
        Result<std::string> line = ReadLine(survivor.get(), &survivor_carry);
        ASSERT_TRUE(line.ok())
            << "pass " << pass << " response " << i << ": "
            << line.status().ToString();
        EXPECT_EQ(line.value(), expected[i])
            << "pass " << pass << " response " << i;
        ++responses_seen;
      }
    }
    EXPECT_EQ(responses_seen, 120u);

    // Phase 3: protocol shutdown must still answer, then drain cleanly
    // (~ChaosServer asserts Run() returned OK).
    EXPECT_EQ(Request(admin.get(), "shutdown", &admin_carry), "ok bye");

    // Nothing in this soak was shed or evicted: the exact-counter part of
    // the invariant.
    EXPECT_EQ(CounterValue("serve.shed.connections"), shed_conns_before);
    EXPECT_EQ(CounterValue("serve.shed.requests"), shed_reqs_before);
    EXPECT_EQ(CounterValue("serve.evictions"), evictions_before);
    // The early-scheduled faults (read@1, write@2/5/9/13) are guaranteed
    // to be reached; the late write faults fire only if the flush pattern
    // produces enough calls, so the bound is conservative.
    EXPECT_GE(server.injector().fired(), 5u);
  }
  std::remove(swap_path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace hido
