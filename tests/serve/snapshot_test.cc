#include "serve/snapshot.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/detector.h"
#include "core/scoring.h"
#include "data/generators/synthetic.h"
#include "ensemble/ensemble_detector.h"

namespace hido {
namespace serve {
namespace {

GeneratedDataset MakeData() {
  SubspaceOutlierConfig config;
  config.num_points = 400;
  config.num_dims = 12;
  config.num_groups = 3;
  config.num_outliers = 4;
  config.seed = 6;
  return GenerateSubspaceOutliers(config);
}

DetectionResult Fit(const GeneratedDataset& g, size_t num_threads = 1) {
  DetectorConfig config;
  config.phi = 5;
  config.target_dim = 2;
  config.num_projections = 10;
  config.evolution.restarts = 6;
  config.seed = 3;
  config.num_threads = num_threads;
  return OutlierDetector(config).Detect(g.data);
}

TEST(SnapshotTest, RoundTripPreservesInfoAndModel) {
  const GeneratedDataset g = MakeData();
  const DetectionResult result = Fit(g);
  const ModelSnapshot snapshot = MakeSnapshot(result, g.data, /*seed=*/3);
  EXPECT_EQ(snapshot.info.algorithm, "evolutionary");
  EXPECT_EQ(snapshot.info.seed, 3u);
  EXPECT_EQ(snapshot.info.phi, result.phi);
  EXPECT_EQ(snapshot.info.target_dim, result.target_dim);

  const Result<ModelSnapshot> back =
      ParseSnapshot(SerializeSnapshot(snapshot));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().info.algorithm, snapshot.info.algorithm);
  EXPECT_EQ(back.value().info.seed, snapshot.info.seed);
  EXPECT_EQ(back.value().info.phi, snapshot.info.phi);
  EXPECT_EQ(back.value().info.target_dim, snapshot.info.target_dim);
  EXPECT_EQ(back.value().model.projections.size(),
            snapshot.model.projections.size());
  // The serialized form is canonical: one more round trip is a fixpoint.
  EXPECT_EQ(SerializeSnapshot(back.value()), SerializeSnapshot(snapshot));
}

// The serving contract (DESIGN.md "Serving"): scoring a training row out of
// a saved-and-reloaded snapshot is *byte-identical* (%.17g) to scoring it
// straight out of the in-process detection result, for every thread count
// used at fit time.
TEST(SnapshotTest, ReloadedSnapshotScoresByteIdenticalAcrossThreadCounts) {
  const GeneratedDataset g = MakeData();
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const DetectionResult result = Fit(g, threads);
    const ModelSnapshot snapshot = MakeSnapshot(result, g.data, 3);

    const std::string path = ::testing::TempDir() +
                             StrFormat("/snapshot_rt_%zu.hido", threads);
    ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
    const Result<std::shared_ptr<ModelSnapshot>> loaded =
        LoadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::remove(path.c_str());

    for (size_t row = 0; row < g.data.num_rows(); ++row) {
      const std::vector<double> values = g.data.Row(row);
      const PointScore direct =
          ScoreNewPoint(result.grid, result.report.projections, values);
      const PointScore served = loaded.value()->model.Score(values);
      EXPECT_EQ(StrFormat("%.17g", served.sparsity_score),
                StrFormat("%.17g", direct.sparsity_score))
          << "row " << row << " threads " << threads;
      EXPECT_EQ(served.covering_projections, direct.covering_projections)
          << "row " << row << " threads " << threads;
    }
  }
}

TEST(SnapshotTest, UnknownVersionRejectedWithClearMessage) {
  const GeneratedDataset g = MakeData();
  const ModelSnapshot snapshot = MakeSnapshot(Fit(g), g.data, 3);
  std::string text = SerializeSnapshot(snapshot);
  const size_t pos = text.find("v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "v3");
  const Result<ModelSnapshot> parsed = ParseSnapshot(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unsupported version 'v3'"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SnapshotTest, UnknownHeaderKeysAreIgnored) {
  const GeneratedDataset g = MakeData();
  const ModelSnapshot snapshot = MakeSnapshot(Fit(g), g.data, 3);
  std::string text = SerializeSnapshot(snapshot);
  const size_t pos = text.find("algorithm");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "future_key future value\n");
  EXPECT_TRUE(ParseSnapshot(text).ok());
}

TEST(SnapshotTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseSnapshot("").ok());
  EXPECT_FALSE(ParseSnapshot("not-a-snapshot v1").ok());
  EXPECT_FALSE(ParseSnapshot("hido-snapshot v1\nalgorithm evolutionary\n")
                   .ok());  // no model section
  EXPECT_FALSE(
      ParseSnapshot("hido-snapshot v1\nalgorithm quantum\nmodel\n").ok());
  EXPECT_FALSE(
      ParseSnapshot("hido-snapshot v1\nseed -12x\nmodel\n").ok());
}

TEST(SnapshotTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadSnapshot("/no/such/snapshot.hido").ok());
}

// ------------------------------------------------------------------- v2 --

ensemble::EnsembleDetectionResult FitEnsemble(const GeneratedDataset& g) {
  ensemble::EnsembleConfig config;
  config.base.phi = 5;
  config.base.target_dim = 2;
  config.base.num_projections = 6;
  config.base.evolution.population_size = 24;
  config.base.evolution.max_generations = 10;
  config.base.evolution.stagnation_generations = 0;
  config.base.evolution.restarts = 1;
  config.base.seed = 3;
  config.ensemble.num_members = 3;
  config.ensemble.combiner = ensemble::CombinerKind::kMeanNormalized;
  config.ensemble.mix = {ensemble::MemberKind::kGa,
                         ensemble::MemberKind::kRandomSubspace,
                         ensemble::MemberKind::kAnneal};
  config.ensemble.subspace_evaluations = 2000;
  config.ensemble.local_evaluations = 2000;
  return ensemble::EnsembleDetector(config).Detect(g.data);
}

// The v2 acceptance criterion: save -> load -> save is a byte fixpoint,
// and every ensemble field (combiner, member kinds, full-range 64-bit
// seeds, scales) survives the trip.
TEST(SnapshotTest, EnsembleRoundTripIsByteFixpoint) {
  const GeneratedDataset g = MakeData();
  const ensemble::EnsembleDetectionResult result = FitEnsemble(g);
  const ModelSnapshot snapshot = MakeEnsembleSnapshot(result, g.data, 3);
  ASSERT_TRUE(snapshot.is_ensemble());
  EXPECT_EQ(snapshot.info.algorithm, "ensemble");
  EXPECT_EQ(snapshot.num_projections(),
            result.members[0].projections.size() +
                result.members[1].projections.size() +
                result.members[2].projections.size());

  const std::string text = SerializeSnapshot(snapshot);
  EXPECT_EQ(text.rfind("hido-snapshot v2\n", 0), 0u);
  const Result<ModelSnapshot> back = ParseSnapshot(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(back.value().is_ensemble());
  EXPECT_EQ(back.value().ensemble->combiner, result.combiner);
  ASSERT_EQ(back.value().ensemble->members.size(), result.members.size());
  for (size_t i = 0; i < result.members.size(); ++i) {
    EXPECT_EQ(back.value().ensemble->members[i].kind,
              result.members[i].kind);
    EXPECT_EQ(back.value().ensemble->members[i].seed,
              result.members[i].seed);
    EXPECT_EQ(StrFormat("%.17g",
                        back.value().ensemble->members[i].score_scale),
              StrFormat("%.17g", result.members[i].score_scale));
  }
  EXPECT_EQ(SerializeSnapshot(back.value()), text);
}

// Serving parity: a reloaded v2 snapshot scores every training row
// byte-identically to the pre-save in-memory ensemble model.
TEST(SnapshotTest, ReloadedEnsembleSnapshotScoresByteIdentical) {
  const GeneratedDataset g = MakeData();
  const ModelSnapshot snapshot =
      MakeEnsembleSnapshot(FitEnsemble(g), g.data, 3);
  const std::string path =
      ::testing::TempDir() + "/snapshot_ensemble_rt.hido";
  ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
  const Result<std::shared_ptr<ModelSnapshot>> loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.value()->is_ensemble());
  for (size_t row = 0; row < g.data.num_rows(); ++row) {
    const std::vector<double> values = g.data.Row(row);
    const ensemble::EnsemblePointScore direct =
        snapshot.ensemble->Score(values);
    const ensemble::EnsemblePointScore served =
        loaded.value()->ensemble->Score(values);
    EXPECT_EQ(StrFormat("%.17g", served.score),
              StrFormat("%.17g", direct.score))
        << "row " << row;
    EXPECT_EQ(served.covering_projections, direct.covering_projections)
        << "row " << row;
  }
}

// Seeds are raw Rng::Next64 values, so the member parser must accept the
// full uint64_t range — a signed parse truncates at INT64_MAX.
TEST(SnapshotTest, EnsembleMemberSeedsAboveInt64MaxRoundTrip) {
  const GeneratedDataset g = MakeData();
  ModelSnapshot snapshot = MakeEnsembleSnapshot(FitEnsemble(g), g.data, 3);
  snapshot.ensemble->members[0].seed = 0xFFFFFFFFFFFFFFFFull;
  snapshot.info.seed = 0xFFFFFFFFFFFFFFFEull;
  const Result<ModelSnapshot> back =
      ParseSnapshot(SerializeSnapshot(snapshot));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().ensemble->members[0].seed, 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(back.value().info.seed, 0xFFFFFFFFFFFFFFFEull);
}

TEST(SnapshotTest, EnsembleMalformedInputsRejected) {
  const GeneratedDataset g = MakeData();
  const std::string good =
      SerializeSnapshot(MakeEnsembleSnapshot(FitEnsemble(g), g.data, 3));

  // Truncated mid-member: the length prefix points past EOF.
  EXPECT_FALSE(ParseSnapshot(good.substr(0, good.size() - 40)).ok());
  // Trailing junk after the last member block.
  EXPECT_FALSE(ParseSnapshot(good + "junk").ok());
  {
    std::string text = good;
    const size_t pos = text.find("member 1 ");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 9, "member 2 ");  // out-of-order member index
    EXPECT_FALSE(ParseSnapshot(text).ok());
  }
  {
    std::string text = good;
    const size_t pos = text.find(" ga ");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 4, " zz ");  // unknown member kind
    EXPECT_FALSE(ParseSnapshot(text).ok());
  }
  {
    std::string text = good;
    const size_t pos = text.find("combiner mean");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 13, "combiner none");  // unknown combiner
    EXPECT_FALSE(ParseSnapshot(text).ok());
  }
  // v2 header with a v1 payload marker: no members line, no model.
  EXPECT_FALSE(
      ParseSnapshot("hido-snapshot v2\nalgorithm ensemble\nmodel\n").ok());
  // members count with no member blocks behind it.
  EXPECT_FALSE(
      ParseSnapshot(
          "hido-snapshot v2\nalgorithm ensemble\ncombiner max\nmembers 2\n")
          .ok());
}

// A v1 snapshot parsed by this build stays a single-model snapshot; the
// ensemble payload is strictly additive.
TEST(SnapshotTest, SingleSnapshotHasNoEnsemblePayload) {
  const GeneratedDataset g = MakeData();
  const ModelSnapshot snapshot = MakeSnapshot(Fit(g), g.data, 3);
  const Result<ModelSnapshot> back =
      ParseSnapshot(SerializeSnapshot(snapshot));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().is_ensemble());
  EXPECT_EQ(back.value().num_dims(), g.data.num_cols());
}

}  // namespace
}  // namespace serve
}  // namespace hido
