#include "serve/snapshot.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/detector.h"
#include "core/scoring.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace serve {
namespace {

GeneratedDataset MakeData() {
  SubspaceOutlierConfig config;
  config.num_points = 400;
  config.num_dims = 12;
  config.num_groups = 3;
  config.num_outliers = 4;
  config.seed = 6;
  return GenerateSubspaceOutliers(config);
}

DetectionResult Fit(const GeneratedDataset& g, size_t num_threads = 1) {
  DetectorConfig config;
  config.phi = 5;
  config.target_dim = 2;
  config.num_projections = 10;
  config.evolution.restarts = 6;
  config.seed = 3;
  config.num_threads = num_threads;
  return OutlierDetector(config).Detect(g.data);
}

TEST(SnapshotTest, RoundTripPreservesInfoAndModel) {
  const GeneratedDataset g = MakeData();
  const DetectionResult result = Fit(g);
  const ModelSnapshot snapshot = MakeSnapshot(result, g.data, /*seed=*/3);
  EXPECT_EQ(snapshot.info.algorithm, "evolutionary");
  EXPECT_EQ(snapshot.info.seed, 3u);
  EXPECT_EQ(snapshot.info.phi, result.phi);
  EXPECT_EQ(snapshot.info.target_dim, result.target_dim);

  const Result<ModelSnapshot> back =
      ParseSnapshot(SerializeSnapshot(snapshot));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().info.algorithm, snapshot.info.algorithm);
  EXPECT_EQ(back.value().info.seed, snapshot.info.seed);
  EXPECT_EQ(back.value().info.phi, snapshot.info.phi);
  EXPECT_EQ(back.value().info.target_dim, snapshot.info.target_dim);
  EXPECT_EQ(back.value().model.projections.size(),
            snapshot.model.projections.size());
  // The serialized form is canonical: one more round trip is a fixpoint.
  EXPECT_EQ(SerializeSnapshot(back.value()), SerializeSnapshot(snapshot));
}

// The serving contract (DESIGN.md "Serving"): scoring a training row out of
// a saved-and-reloaded snapshot is *byte-identical* (%.17g) to scoring it
// straight out of the in-process detection result, for every thread count
// used at fit time.
TEST(SnapshotTest, ReloadedSnapshotScoresByteIdenticalAcrossThreadCounts) {
  const GeneratedDataset g = MakeData();
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const DetectionResult result = Fit(g, threads);
    const ModelSnapshot snapshot = MakeSnapshot(result, g.data, 3);

    const std::string path = ::testing::TempDir() +
                             StrFormat("/snapshot_rt_%zu.hido", threads);
    ASSERT_TRUE(SaveSnapshot(snapshot, path).ok());
    const Result<std::shared_ptr<ModelSnapshot>> loaded =
        LoadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::remove(path.c_str());

    for (size_t row = 0; row < g.data.num_rows(); ++row) {
      const std::vector<double> values = g.data.Row(row);
      const PointScore direct =
          ScoreNewPoint(result.grid, result.report.projections, values);
      const PointScore served = loaded.value()->model.Score(values);
      EXPECT_EQ(StrFormat("%.17g", served.sparsity_score),
                StrFormat("%.17g", direct.sparsity_score))
          << "row " << row << " threads " << threads;
      EXPECT_EQ(served.covering_projections, direct.covering_projections)
          << "row " << row << " threads " << threads;
    }
  }
}

TEST(SnapshotTest, UnknownVersionRejectedWithClearMessage) {
  const GeneratedDataset g = MakeData();
  const ModelSnapshot snapshot = MakeSnapshot(Fit(g), g.data, 3);
  std::string text = SerializeSnapshot(snapshot);
  const size_t pos = text.find("v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "v2");
  const Result<ModelSnapshot> parsed = ParseSnapshot(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unsupported version 'v2'"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SnapshotTest, UnknownHeaderKeysAreIgnored) {
  const GeneratedDataset g = MakeData();
  const ModelSnapshot snapshot = MakeSnapshot(Fit(g), g.data, 3);
  std::string text = SerializeSnapshot(snapshot);
  const size_t pos = text.find("algorithm");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "future_key future value\n");
  EXPECT_TRUE(ParseSnapshot(text).ok());
}

TEST(SnapshotTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseSnapshot("").ok());
  EXPECT_FALSE(ParseSnapshot("not-a-snapshot v1").ok());
  EXPECT_FALSE(ParseSnapshot("hido-snapshot v1\nalgorithm evolutionary\n")
                   .ok());  // no model section
  EXPECT_FALSE(
      ParseSnapshot("hido-snapshot v1\nalgorithm quantum\nmodel\n").ok());
  EXPECT_FALSE(
      ParseSnapshot("hido-snapshot v1\nseed -12x\nmodel\n").ok());
}

TEST(SnapshotTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadSnapshot("/no/such/snapshot.hido").ok());
}

}  // namespace
}  // namespace serve
}  // namespace hido
