#include "serve/score_service.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "common/string_util.h"
#include "core/detector.h"
#include "data/generators/synthetic.h"
#include "ensemble/ensemble_detector.h"

namespace hido {
namespace serve {
namespace {

GeneratedDataset MakeData() {
  SubspaceOutlierConfig config;
  config.num_points = 300;
  config.num_dims = 8;
  config.num_groups = 3;
  config.num_outliers = 3;
  config.seed = 9;
  return GenerateSubspaceOutliers(config);
}

std::shared_ptr<ModelSnapshot> FitSnapshot(const GeneratedDataset& g,
                                           uint64_t seed = 3) {
  DetectorConfig config;
  config.phi = 5;
  config.target_dim = 2;
  config.num_projections = 8;
  config.evolution.restarts = 4;
  config.seed = seed;
  return std::make_shared<ModelSnapshot>(
      MakeSnapshot(OutlierDetector(config).Detect(g.data), g.data, seed));
}

std::string CsvRow(const Dataset& data, size_t row) {
  std::vector<std::string> fields;
  for (const double v : data.Row(row)) {
    fields.push_back(StrFormat("%.17g", v));
  }
  return Join(fields, ",");
}

TEST(ScoreServiceTest, NoModelPublishedIsAnError) {
  ScoreService service;
  EXPECT_EQ(service.Handle("score 1,2,3"), "err no model published");
  EXPECT_EQ(service.generation(), 0u);
  EXPECT_EQ(service.Current(), nullptr);
}

TEST(ScoreServiceTest, ScoreMatchesDirectModelScore) {
  const GeneratedDataset g = MakeData();
  std::shared_ptr<ModelSnapshot> snapshot = FitSnapshot(g);
  const SparseModel model = snapshot->model;  // copy before publishing
  ScoreService service;
  EXPECT_EQ(service.Publish(std::move(snapshot)), 1u);

  for (size_t row = 0; row < g.data.num_rows(); row += 17) {
    const PointScore expected = model.Score(g.data.Row(row));
    EXPECT_EQ(service.Handle("score " + CsvRow(g.data, row)),
              StrFormat("ok score=%.17g covering=%zu gen=1",
                        expected.sparsity_score,
                        expected.covering_projections))
        << "row " << row;
  }
}

TEST(ScoreServiceTest, ProtocolErrorsAndPing) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));

  EXPECT_EQ(service.Handle("ping"), "ok pong");
  EXPECT_EQ(service.Handle("score 1,2"), "err expected 8 values, got 2");
  const std::string bad = service.Handle("score 1,2,3,4,5,6,7,junk");
  EXPECT_EQ(bad.substr(0, 3), "err") << bad;
  EXPECT_EQ(service.Handle("bogus"), "err unknown command 'bogus'");
  EXPECT_FALSE(service.shutdown_requested());

  // Missing-value spellings become NaN coordinates (valid, not errors).
  const std::string missing = service.Handle("score 1,2,3,4,5,6,7,?");
  EXPECT_EQ(missing.substr(0, 8), "ok score") << missing;
}

TEST(ScoreServiceTest, InfoReportsProvenance) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g, /*seed=*/3));
  const std::string info = service.Handle("info");
  EXPECT_NE(info.find("ok gen=1"), std::string::npos) << info;
  EXPECT_NE(info.find("dims=8"), std::string::npos) << info;
  EXPECT_NE(info.find("algorithm=evolutionary"), std::string::npos) << info;
  EXPECT_NE(info.find("seed=3"), std::string::npos) << info;
}

TEST(ScoreServiceTest, BatchResponsesAreByteIdenticalAcrossThreadCounts) {
  const GeneratedDataset g = MakeData();
  std::vector<std::string> lines;
  for (size_t row = 0; row < g.data.num_rows(); ++row) {
    lines.push_back("score " + CsvRow(g.data, row));
  }

  std::vector<std::vector<std::string>> per_thread_count;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ScoreServiceOptions options;
    options.num_threads = threads;
    ScoreService service(options);
    service.Publish(FitSnapshot(g));
    std::vector<ServeRequest> batch;
    for (const std::string& line : lines) {
      batch.push_back(service.MakeRequest(line));
    }
    per_thread_count.push_back(service.Process(std::move(batch)));
  }
  EXPECT_EQ(per_thread_count[0], per_thread_count[1]);
  EXPECT_EQ(per_thread_count[0], per_thread_count[2]);
  EXPECT_EQ(per_thread_count[0].front().substr(0, 8), "ok score");
}

TEST(ScoreServiceTest, ExpiredDeadlineAnswersErrDeadline) {
  const GeneratedDataset g = MakeData();
  FakeClock clock(100.0);
  ScoreServiceOptions options;
  options.request_deadline_seconds = 5.0;
  options.clock = &clock;
  ScoreService service(options);
  service.Publish(FitSnapshot(g));

  const std::string line = "score " + CsvRow(g.data, 0);
  std::vector<ServeRequest> batch;
  batch.push_back(service.MakeRequest(line));   // deadline at t=105
  batch.push_back(service.MakeRequest("ping"));  // admin: no deadline shed
  clock.Advance(10.0);  // t=110: expired

  const std::vector<std::string> responses =
      service.Process(std::move(batch));
  EXPECT_EQ(responses[0], "err deadline");
  EXPECT_EQ(responses[1], "ok pong");

  // A fresh request after the advance is still inside its own budget.
  EXPECT_EQ(service.Handle(line).substr(0, 8), "ok score");
}

TEST(ScoreServiceTest, SwapPublishesNewGenerationZeroDowntime) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g, /*seed=*/3));
  ASSERT_EQ(service.generation(), 1u);

  const std::string path = ::testing::TempDir() + "/swap_snapshot.hido";
  ASSERT_TRUE(SaveSnapshot(*FitSnapshot(g, /*seed=*/7), path).ok());
  const std::string swapped = service.Handle("swap " + path);
  EXPECT_EQ(swapped.substr(0, 18), "ok swapped gen=2 d") << swapped;
  EXPECT_EQ(service.generation(), 2u);
  EXPECT_EQ(service.Current()->info.seed, 7u);

  // A bad path answers err and keeps the current snapshot serving.
  EXPECT_EQ(service.Handle("swap /no/such/file").substr(0, 3), "err");
  EXPECT_EQ(service.generation(), 2u);
  std::remove(path.c_str());
}

// Swap-fault hardening: whatever is wrong with the snapshot on disk —
// missing, truncated mid-stream, or outright garbage — the answer is an
// `err ...` line and the served generation (and scores) are untouched.
TEST(ScoreServiceTest, SwapFaultsLeaveServedGenerationUntouched) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g, /*seed=*/3));
  ASSERT_EQ(service.generation(), 1u);
  const std::string line = "score " + CsvRow(g.data, 0);
  const std::string baseline = service.Handle(line);
  ASSERT_EQ(baseline.substr(0, 8), "ok score");

  const std::string good_path = ::testing::TempDir() + "/swap_good.hido";
  ASSERT_TRUE(SaveSnapshot(*FitSnapshot(g, /*seed=*/7), good_path).ok());
  Result<std::string> bytes = ReadFileToString(good_path);
  ASSERT_TRUE(bytes.ok());

  const std::string truncated_path =
      ::testing::TempDir() + "/swap_truncated.hido";
  ASSERT_TRUE(WriteFileAtomic(truncated_path,
                              bytes.value().substr(0, bytes.value().size() / 2))
                  .ok());
  const std::string corrupt_path =
      ::testing::TempDir() + "/swap_corrupt.hido";
  std::string corrupt = bytes.value();
  for (size_t i = 0; i < corrupt.size(); i += 3) corrupt[i] ^= 0x5a;
  ASSERT_TRUE(WriteFileAtomic(corrupt_path, corrupt).ok());

  for (const std::string& bad :
       {std::string("/no/such/dir/snapshot.hido"), truncated_path,
        corrupt_path}) {
    const std::string response = service.Handle("swap " + bad);
    EXPECT_EQ(response.substr(0, 4), "err ") << bad << " -> " << response;
    EXPECT_EQ(service.generation(), 1u) << bad;
    EXPECT_EQ(service.Handle(line), baseline) << bad;
  }

  // The service is not wedged: the intact snapshot still swaps in.
  EXPECT_EQ(service.Handle("swap " + good_path).substr(0, 16),
            "ok swapped gen=2");
  EXPECT_EQ(service.generation(), 2u);
  std::remove(good_path.c_str());
  std::remove(truncated_path.c_str());
  std::remove(corrupt_path.c_str());
}

// The RCU contract: score requests racing an arbitrary number of model
// swaps never fail and never observe a torn model — every response is a
// well-formed `ok score=... gen=<g>` where <g> is one of the published
// generations.
TEST(ScoreServiceTest, ConcurrentSwapsLoseNoRequests) {
  const GeneratedDataset g = MakeData();
  ScoreServiceOptions options;
  options.num_threads = 4;
  ScoreService service(options);
  service.Publish(FitSnapshot(g, 3));

  std::shared_ptr<ModelSnapshot> next = FitSnapshot(g, 7);
  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 4; ++t) {
    scorers.emplace_back([&, t] {
      size_t row = static_cast<size_t>(t);
      while (!done.load(std::memory_order_acquire)) {
        const std::string response =
            service.Handle("score " + CsvRow(g.data, row));
        if (response.compare(0, 9, "ok score=") != 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        row = (row + 7) % g.data.num_rows();
      }
    });
  }
  for (int swap = 0; swap < 50; ++swap) {
    service.Publish(std::make_shared<ModelSnapshot>(*next));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& scorer : scorers) scorer.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(service.generation(), 51u);
}

// ------------------------------------------------------- ensemble v2 --

std::shared_ptr<ModelSnapshot> FitEnsembleSnapshot(const GeneratedDataset& g,
                                                   uint64_t seed = 3) {
  ensemble::EnsembleConfig config;
  config.base.phi = 5;
  config.base.target_dim = 2;
  config.base.num_projections = 6;
  config.base.evolution.population_size = 24;
  config.base.evolution.max_generations = 10;
  config.base.evolution.stagnation_generations = 0;
  config.base.evolution.restarts = 1;
  config.base.seed = seed;
  config.ensemble.num_members = 3;
  config.ensemble.combiner = ensemble::CombinerKind::kMeanNormalized;
  return std::make_shared<ModelSnapshot>(MakeEnsembleSnapshot(
      ensemble::EnsembleDetector(config).Detect(g.data), g.data, seed));
}

// Ensemble score responses carry members=<E> (placed before gen=, which
// smoke tooling locates with a reverse search) and match the in-memory
// EnsembleModel byte for byte.
TEST(ScoreServiceTest, EnsembleScoreMatchesDirectModelScore) {
  const GeneratedDataset g = MakeData();
  std::shared_ptr<ModelSnapshot> snapshot = FitEnsembleSnapshot(g);
  const ensemble::EnsembleModel model = *snapshot->ensemble;
  ScoreService service;
  EXPECT_EQ(service.Publish(std::move(snapshot)), 1u);

  for (size_t row = 0; row < g.data.num_rows(); row += 17) {
    const ensemble::EnsemblePointScore expected =
        model.Score(g.data.Row(row));
    EXPECT_EQ(service.Handle("score " + CsvRow(g.data, row)),
              StrFormat("ok score=%.17g covering=%zu members=3 gen=1",
                        expected.score, expected.covering_projections))
        << "row " << row;
  }
}

TEST(ScoreServiceTest, EnsembleInfoReportsMembersAndCombiner) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitEnsembleSnapshot(g, /*seed=*/5));
  const std::string info = service.Handle("info");
  EXPECT_NE(info.find("ok gen=1"), std::string::npos) << info;
  EXPECT_NE(info.find("algorithm=ensemble"), std::string::npos) << info;
  EXPECT_NE(info.find("members=3"), std::string::npos) << info;
  EXPECT_NE(info.find("combiner=mean"), std::string::npos) << info;
  EXPECT_NE(info.find("seed=5"), std::string::npos) << info;
}

// The zero-downtime swap criterion for the ensemble subsystem: a serving
// process moves single -> ensemble -> single through `swap` with every
// request answered and the response shape tracking the model kind.
TEST(ScoreServiceTest, SwapBetweenSingleAndEnsembleGenerations) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g, /*seed=*/3));
  const std::string line = "score " + CsvRow(g.data, 0);
  ASSERT_EQ(service.Handle(line).substr(0, 8), "ok score");

  const std::string ensemble_path =
      ::testing::TempDir() + "/swap_to_ensemble.hido";
  ASSERT_TRUE(SaveSnapshot(*FitEnsembleSnapshot(g, /*seed=*/7),
                           ensemble_path)
                  .ok());
  EXPECT_EQ(service.Handle("swap " + ensemble_path).substr(0, 16),
            "ok swapped gen=2");
  const std::string ensemble_response = service.Handle(line);
  EXPECT_NE(ensemble_response.find(" members=3 gen=2"), std::string::npos)
      << ensemble_response;
  EXPECT_TRUE(service.Current()->is_ensemble());

  const std::string single_path =
      ::testing::TempDir() + "/swap_to_single.hido";
  ASSERT_TRUE(SaveSnapshot(*FitSnapshot(g, /*seed=*/3), single_path).ok());
  EXPECT_EQ(service.Handle("swap " + single_path).substr(0, 16),
            "ok swapped gen=3");
  const std::string single_response = service.Handle(line);
  EXPECT_EQ(single_response.find("members="), std::string::npos)
      << single_response;
  EXPECT_NE(single_response.find("gen=3"), std::string::npos)
      << single_response;
  EXPECT_FALSE(service.Current()->is_ensemble());
  std::remove(ensemble_path.c_str());
  std::remove(single_path.c_str());
}

TEST(ScoreServiceTest, ShutdownSetsFlagAndAcknowledges) {
  ScoreService service;
  EXPECT_FALSE(service.shutdown_requested());
  EXPECT_EQ(service.Handle("shutdown"), "ok bye");
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ScoreServiceTest, StatsReportsCountersAndQuantiles) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  for (int i = 0; i < 5; ++i) {
    service.Handle("score " + CsvRow(g.data, static_cast<size_t>(i)));
  }
  const std::string stats = service.Handle("stats");
  EXPECT_EQ(stats.substr(0, 12), "ok requests=") << stats;
  EXPECT_NE(stats.find("score_p50_seconds="), std::string::npos) << stats;
  EXPECT_NE(stats.find("score_p99_seconds="), std::string::npos) << stats;
}

}  // namespace
}  // namespace serve
}  // namespace hido
