#include "serve/server.h"

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "common/string_util.h"
#include "core/detector.h"
#include "data/generators/synthetic.h"
#include "serve/snapshot.h"

namespace hido {
namespace serve {
namespace {

GeneratedDataset MakeData() {
  SubspaceOutlierConfig config;
  config.num_points = 300;
  config.num_dims = 8;
  config.num_groups = 3;
  config.num_outliers = 3;
  config.seed = 9;
  return GenerateSubspaceOutliers(config);
}

std::shared_ptr<ModelSnapshot> FitSnapshot(const GeneratedDataset& g,
                                           uint64_t seed = 3) {
  DetectorConfig config;
  config.phi = 5;
  config.target_dim = 2;
  config.num_projections = 8;
  config.evolution.restarts = 4;
  config.seed = seed;
  return std::make_shared<ModelSnapshot>(
      MakeSnapshot(OutlierDetector(config).Detect(g.data), g.data, seed));
}

std::string CsvRow(const Dataset& data, size_t row) {
  std::vector<std::string> fields;
  for (const double v : data.Row(row)) {
    fields.push_back(StrFormat("%.17g", v));
  }
  return Join(fields, ",");
}

// A server running on its own thread for the duration of a test, always
// shut down (via the protocol or the stop token) before teardown.
class ServerFixture {
 public:
  ServerFixture(ScoreService& service, const StopToken* stop = nullptr)
      : ServerFixture(service, MakeOptions(stop)) {}

  ServerFixture(ScoreService& service, ServerOptions options)
      : server_(service, std::move(options)) {
    const Status started = server_.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] { run_status_ = server_.Run(); });
  }

  ~ServerFixture() {
    if (thread_.joinable()) thread_.join();
    EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
  }

  int port() const { return server_.port(); }

  OwnedFd Connect() {
    Result<OwnedFd> client = ConnectTcp("127.0.0.1", server_.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client.value());
  }

 private:
  static ServerOptions MakeOptions(const StopToken* stop) {
    ServerOptions options;
    options.stop = stop;
    options.poll_interval_ms = 20;
    return options;
  }

  SocketServer server_;
  std::thread thread_;
  Status run_status_;
};

std::string Request(int fd, const std::string& line, std::string* carry) {
  EXPECT_TRUE(WriteAll(fd, line + "\n").ok());
  Result<std::string> response = ReadLine(fd, carry);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return response.ok() ? response.value() : std::string();
}

TEST(ServerTest, ServesScoresAndShutsDownOverTheProtocol) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  ServerFixture server(service);

  OwnedFd client = server.Connect();
  std::string carry;
  EXPECT_EQ(Request(client.get(), "ping", &carry), "ok pong");
  const std::string score =
      Request(client.get(), "score " + CsvRow(g.data, 0), &carry);
  EXPECT_EQ(score.substr(0, 9), "ok score=") << score;
  EXPECT_EQ(Request(client.get(), "shutdown", &carry), "ok bye");
  // ~ServerFixture joins: Run() must return once shutdown was answered.
}

TEST(ServerTest, PipelinedBatchAnswersInOrder) {
  const GeneratedDataset g = MakeData();
  ScoreServiceOptions options;
  options.num_threads = 4;
  ScoreService service(options);
  service.Publish(FitSnapshot(g));
  ServerFixture server(service);

  OwnedFd client = server.Connect();
  // One write carrying many requests: the loop must frame and answer all
  // of them, in order, whatever batching poll() happens to see.
  std::string burst;
  for (size_t row = 0; row < 40; ++row) {
    burst += "score " + CsvRow(g.data, row) + "\n";
  }
  ASSERT_TRUE(WriteAll(client.get(), burst).ok());

  std::string carry;
  std::vector<std::string> responses;
  for (size_t row = 0; row < 40; ++row) {
    Result<std::string> line = ReadLine(client.get(), &carry);
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    responses.push_back(line.value());
  }
  // In-order and identical to the single-request answers.
  for (size_t row = 0; row < 40; ++row) {
    EXPECT_EQ(responses[row],
              service.Handle("score " + CsvRow(g.data, row)))
        << row;
  }
  ASSERT_TRUE(WriteAll(client.get(), "shutdown\n").ok());
  Result<std::string> bye = ReadLine(client.get(), &carry);
  ASSERT_TRUE(bye.ok());
}

TEST(ServerTest, BurstLargerThanMaxBatchDrainsWithoutNewBytes) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.max_batch = 4;  // force several rounds of buffered backlog
  {
    ServerFixture server(service, options);
    OwnedFd client = server.Connect();
    // One write, many more lines than max_batch: once the kernel buffer is
    // drained, POLLIN never fires again, so the loop must keep framing the
    // user-space backlog on its own or the tail of this burst hangs.
    std::string burst;
    for (size_t row = 0; row < 25; ++row) {
      burst += "score " + CsvRow(g.data, row) + "\n";
    }
    ASSERT_TRUE(WriteAll(client.get(), burst).ok());
    std::string carry;
    for (size_t row = 0; row < 25; ++row) {
      Result<std::string> line = ReadLine(client.get(), &carry);
      ASSERT_TRUE(line.ok()) << line.status().ToString();
      EXPECT_EQ(line.value(),
                service.Handle("score " + CsvRow(g.data, row)))
          << row;
    }
    stop.RequestCancel();
  }
}

TEST(ServerTest, OverlongLineErrorArrivesAfterEarlierResponses) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.max_line_bytes = 256;  // small enough to overflow in one read
  {
    ServerFixture server(service, options);
    OwnedFd client = server.Connect();
    // Two well-formed requests followed by an unterminated flood, all in
    // one write: the client is owed both answers *before* the error line.
    const std::string junk(1024, 'x');
    ASSERT_TRUE(WriteAll(client.get(), "ping\nping\n" + junk).ok());
    std::string carry;
    Result<std::string> first = ReadLine(client.get(), &carry);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_EQ(first.value(), "ok pong");
    Result<std::string> second = ReadLine(client.get(), &carry);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(second.value(), "ok pong");
    Result<std::string> error = ReadLine(client.get(), &carry);
    ASSERT_TRUE(error.ok()) << error.status().ToString();
    EXPECT_EQ(error.value(), "err line too long");
    stop.RequestCancel();
  }
}

TEST(ServerTest, SwapMidStreamLosesNoRequests) {
  const GeneratedDataset g = MakeData();
  ScoreServiceOptions options;
  options.num_threads = 2;
  ScoreService service(options);
  service.Publish(FitSnapshot(g, 3));
  ServerFixture server(service);

  const std::string path = ::testing::TempDir() + "/server_swap.hido";
  ASSERT_TRUE(SaveSnapshot(*FitSnapshot(g, 7), path).ok());

  OwnedFd scorer = server.Connect();
  OwnedFd admin = server.Connect();
  std::string scorer_carry;
  std::string admin_carry;
  size_t failures = 0;
  bool saw_new_generation = false;
  for (size_t i = 0; i < 120; ++i) {
    if (i == 40) {
      const std::string swapped =
          Request(admin.get(), "swap " + path, &admin_carry);
      EXPECT_EQ(swapped.substr(0, 10), "ok swapped") << swapped;
    }
    const std::string response = Request(
        scorer.get(), "score " + CsvRow(g.data, i % g.data.num_rows()),
        &scorer_carry);
    if (response.compare(0, 9, "ok score=") != 0) ++failures;
    if (response.find("gen=2") != std::string::npos) {
      saw_new_generation = true;
    }
  }
  EXPECT_EQ(failures, 0u);
  EXPECT_TRUE(saw_new_generation);
  std::remove(path.c_str());

  ASSERT_TRUE(WriteAll(admin.get(), "shutdown\n").ok());
  Result<std::string> bye = ReadLine(admin.get(), &admin_carry);
  ASSERT_TRUE(bye.ok());
}

TEST(ServerTest, StopTokenEndsTheLoop) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  {
    ServerFixture server(service, &stop);
    OwnedFd client = server.Connect();
    std::string carry;
    EXPECT_EQ(Request(client.get(), "ping", &carry), "ok pong");
    stop.RequestCancel();
    // ~ServerFixture joins: Run() must notice the token and return OK.
  }
}

TEST(ServerTest, OverlongUnframedLineIsRejected) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;  // server_test owns shutdown here: no protocol shutdown
  {
    ServerFixture server(service, &stop);
    OwnedFd client = server.Connect();
    // Default max_line_bytes is 1 MiB; stream 2 MiB without a newline.
    const std::string junk(64 * 1024, 'x');
    for (int i = 0; i < 32; ++i) {
      if (!WriteAll(client.get(), junk).ok()) break;  // server may close
    }
    std::string carry;
    Result<std::string> response = ReadLine(client.get(), &carry);
    if (response.ok()) {
      EXPECT_EQ(response.value(), "err line too long");
    }  // else: the server already closed the connection, also acceptable
    stop.RequestCancel();
  }
}

}  // namespace
}  // namespace serve
}  // namespace hido
