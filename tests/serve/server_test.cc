#include "serve/server.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "common/string_util.h"
#include "core/detector.h"
#include "data/generators/synthetic.h"
#include "serve/snapshot.h"

namespace hido {
namespace serve {
namespace {

GeneratedDataset MakeData() {
  SubspaceOutlierConfig config;
  config.num_points = 300;
  config.num_dims = 8;
  config.num_groups = 3;
  config.num_outliers = 3;
  config.seed = 9;
  return GenerateSubspaceOutliers(config);
}

std::shared_ptr<ModelSnapshot> FitSnapshot(const GeneratedDataset& g,
                                           uint64_t seed = 3) {
  DetectorConfig config;
  config.phi = 5;
  config.target_dim = 2;
  config.num_projections = 8;
  config.evolution.restarts = 4;
  config.seed = seed;
  return std::make_shared<ModelSnapshot>(
      MakeSnapshot(OutlierDetector(config).Detect(g.data), g.data, seed));
}

std::string CsvRow(const Dataset& data, size_t row) {
  std::vector<std::string> fields;
  for (const double v : data.Row(row)) {
    fields.push_back(StrFormat("%.17g", v));
  }
  return Join(fields, ",");
}

// A server running on its own thread for the duration of a test, always
// shut down (via the protocol or the stop token) before teardown. An
// optional FaultInjector is installed on the server thread only, so the
// test's own client I/O through the same helpers stays undisturbed.
class ServerFixture {
 public:
  ServerFixture(ScoreService& service, const StopToken* stop = nullptr)
      : ServerFixture(service, MakeOptions(stop)) {}

  ServerFixture(ScoreService& service, ServerOptions options,
                FaultInjector* injector = nullptr)
      : server_(service, std::move(options)) {
    const Status started = server_.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this, injector] {
      FaultInjector::InstallOnThisThread(injector);
      run_status_ = server_.Run();
      FaultInjector::InstallOnThisThread(nullptr);
    });
  }

  ~ServerFixture() {
    if (thread_.joinable()) thread_.join();
    EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
  }

  int port() const { return server_.port(); }

  OwnedFd Connect() {
    Result<OwnedFd> client = ConnectTcp("127.0.0.1", server_.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client.value());
  }

 private:
  static ServerOptions MakeOptions(const StopToken* stop) {
    ServerOptions options;
    options.stop = stop;
    options.poll_interval_ms = 20;
    return options;
  }

  SocketServer server_;
  std::thread thread_;
  Status run_status_;
};

std::string Request(int fd, const std::string& line, std::string* carry) {
  EXPECT_TRUE(WriteAll(fd, line + "\n").ok());
  Result<std::string> response = ReadLine(fd, carry);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return response.ok() ? response.value() : std::string();
}

TEST(ServerTest, ServesScoresAndShutsDownOverTheProtocol) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  ServerFixture server(service);

  OwnedFd client = server.Connect();
  std::string carry;
  EXPECT_EQ(Request(client.get(), "ping", &carry), "ok pong");
  const std::string score =
      Request(client.get(), "score " + CsvRow(g.data, 0), &carry);
  EXPECT_EQ(score.substr(0, 9), "ok score=") << score;
  EXPECT_EQ(Request(client.get(), "shutdown", &carry), "ok bye");
  // ~ServerFixture joins: Run() must return once shutdown was answered.
}

TEST(ServerTest, PipelinedBatchAnswersInOrder) {
  const GeneratedDataset g = MakeData();
  ScoreServiceOptions options;
  options.num_threads = 4;
  ScoreService service(options);
  service.Publish(FitSnapshot(g));
  ServerFixture server(service);

  OwnedFd client = server.Connect();
  // One write carrying many requests: the loop must frame and answer all
  // of them, in order, whatever batching poll() happens to see.
  std::string burst;
  for (size_t row = 0; row < 40; ++row) {
    burst += "score " + CsvRow(g.data, row) + "\n";
  }
  ASSERT_TRUE(WriteAll(client.get(), burst).ok());

  std::string carry;
  std::vector<std::string> responses;
  for (size_t row = 0; row < 40; ++row) {
    Result<std::string> line = ReadLine(client.get(), &carry);
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    responses.push_back(line.value());
  }
  // In-order and identical to the single-request answers.
  for (size_t row = 0; row < 40; ++row) {
    EXPECT_EQ(responses[row],
              service.Handle("score " + CsvRow(g.data, row)))
        << row;
  }
  ASSERT_TRUE(WriteAll(client.get(), "shutdown\n").ok());
  Result<std::string> bye = ReadLine(client.get(), &carry);
  ASSERT_TRUE(bye.ok());
}

TEST(ServerTest, BurstLargerThanMaxBatchDrainsWithoutNewBytes) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.max_batch = 4;  // force several rounds of buffered backlog
  {
    ServerFixture server(service, options);
    OwnedFd client = server.Connect();
    // One write, many more lines than max_batch: once the kernel buffer is
    // drained, POLLIN never fires again, so the loop must keep framing the
    // user-space backlog on its own or the tail of this burst hangs.
    std::string burst;
    for (size_t row = 0; row < 25; ++row) {
      burst += "score " + CsvRow(g.data, row) + "\n";
    }
    ASSERT_TRUE(WriteAll(client.get(), burst).ok());
    std::string carry;
    for (size_t row = 0; row < 25; ++row) {
      Result<std::string> line = ReadLine(client.get(), &carry);
      ASSERT_TRUE(line.ok()) << line.status().ToString();
      EXPECT_EQ(line.value(),
                service.Handle("score " + CsvRow(g.data, row)))
          << row;
    }
    stop.RequestCancel();
  }
}

TEST(ServerTest, OverlongLineErrorArrivesAfterEarlierResponses) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.max_line_bytes = 256;  // small enough to overflow in one read
  {
    ServerFixture server(service, options);
    OwnedFd client = server.Connect();
    // Two well-formed requests followed by an unterminated flood, all in
    // one write: the client is owed both answers *before* the error line.
    const std::string junk(1024, 'x');
    ASSERT_TRUE(WriteAll(client.get(), "ping\nping\n" + junk).ok());
    std::string carry;
    Result<std::string> first = ReadLine(client.get(), &carry);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_EQ(first.value(), "ok pong");
    Result<std::string> second = ReadLine(client.get(), &carry);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(second.value(), "ok pong");
    Result<std::string> error = ReadLine(client.get(), &carry);
    ASSERT_TRUE(error.ok()) << error.status().ToString();
    EXPECT_EQ(error.value(), "err line too long");
    stop.RequestCancel();
  }
}

TEST(ServerTest, SwapMidStreamLosesNoRequests) {
  const GeneratedDataset g = MakeData();
  ScoreServiceOptions options;
  options.num_threads = 2;
  ScoreService service(options);
  service.Publish(FitSnapshot(g, 3));
  ServerFixture server(service);

  const std::string path = ::testing::TempDir() + "/server_swap.hido";
  ASSERT_TRUE(SaveSnapshot(*FitSnapshot(g, 7), path).ok());

  OwnedFd scorer = server.Connect();
  OwnedFd admin = server.Connect();
  std::string scorer_carry;
  std::string admin_carry;
  size_t failures = 0;
  bool saw_new_generation = false;
  for (size_t i = 0; i < 120; ++i) {
    if (i == 40) {
      const std::string swapped =
          Request(admin.get(), "swap " + path, &admin_carry);
      EXPECT_EQ(swapped.substr(0, 10), "ok swapped") << swapped;
    }
    const std::string response = Request(
        scorer.get(), "score " + CsvRow(g.data, i % g.data.num_rows()),
        &scorer_carry);
    if (response.compare(0, 9, "ok score=") != 0) ++failures;
    if (response.find("gen=2") != std::string::npos) {
      saw_new_generation = true;
    }
  }
  EXPECT_EQ(failures, 0u);
  EXPECT_TRUE(saw_new_generation);
  std::remove(path.c_str());

  ASSERT_TRUE(WriteAll(admin.get(), "shutdown\n").ok());
  Result<std::string> bye = ReadLine(admin.get(), &admin_carry);
  ASSERT_TRUE(bye.ok());
}

TEST(ServerTest, StopTokenEndsTheLoop) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  {
    ServerFixture server(service, &stop);
    OwnedFd client = server.Connect();
    std::string carry;
    EXPECT_EQ(Request(client.get(), "ping", &carry), "ok pong");
    stop.RequestCancel();
    // ~ServerFixture joins: Run() must notice the token and return OK.
  }
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).Value();
}

// Polls (with a real-time bound) until the named counter reaches `target`;
// FakeClock-driven evictions land on the server's next poll round, so the
// test must wait for the round, not for wall-clock time.
bool WaitForCounter(const char* name, uint64_t target) {
  for (int i = 0; i < 500; ++i) {
    if (CounterValue(name) >= target) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return CounterValue(name) >= target;
}

// Reads until EOF (or an error), returning everything seen. Used by shed
// and eviction tests where the server closes the connection.
std::string ReadUntilClosed(int fd) {
  std::string all;
  std::string carry;
  while (true) {
    Result<std::string> line = ReadLine(fd, &carry);
    if (!line.ok()) break;
    all += line.value();
    all += '\n';
  }
  return all;
}

TEST(ServerTest, AcceptShedBeyondMaxConnectionsAnswersErrBusy) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.max_connections = 2;
  const uint64_t shed_before = CounterValue("serve.shed.connections");
  {
    ServerFixture server(service, options);
    OwnedFd first = server.Connect();
    OwnedFd second = server.Connect();
    std::string carry1;
    std::string carry2;
    // Round-trip both so they are accepted before the third knocks.
    EXPECT_EQ(Request(first.get(), "ping", &carry1), "ok pong");
    EXPECT_EQ(Request(second.get(), "ping", &carry2), "ok pong");

    OwnedFd third = server.Connect();
    EXPECT_EQ(ReadUntilClosed(third.get()), "err busy\n");
    EXPECT_EQ(CounterValue("serve.shed.connections"), shed_before + 1);
    // The admitted connections are untouched by the shed...
    EXPECT_EQ(Request(first.get(), "ping", &carry1), "ok pong");
    EXPECT_EQ(Request(second.get(), "ping", &carry2), "ok pong");
    // ...and the gauge reports exactly the two of them.
    EXPECT_EQ(
        obs::MetricsRegistry::Global().GetGauge("serve.conn.active").Value(),
        2);

    // A freed slot re-admits: close one, wait for the server to reap it
    // (the gauge dropping is the signal), and a newcomer gets served.
    first.Reset();
    obs::Gauge& active =
        obs::MetricsRegistry::Global().GetGauge("serve.conn.active");
    for (int i = 0; i < 500 && active.Value() > 1; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(active.Value(), 1);
    OwnedFd fourth = server.Connect();
    std::string carry4;
    EXPECT_EQ(Request(fourth.get(), "ping", &carry4), "ok pong");
    stop.RequestCancel();
  }
}

TEST(ServerTest, OverloadShedsNewestRequestsWithErrOverloaded) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.max_batch = 2;    // several framing rounds per burst
  options.max_pending = 3;  // backlog budget beyond the current batch
  const uint64_t shed_before = CounterValue("serve.shed.requests");
  {
    ServerFixture server(service, options);
    OwnedFd client = server.Connect();
    std::string carry;
    // Settle the connection so the burst is the only traffic in flight.
    EXPECT_EQ(Request(client.get(), "ping", &carry), "ok pong");

    // One send, ten requests: the first round frames 2 (max_batch) and
    // sheds the newest 5 of the remaining 8 (max_pending 3). The kept
    // five answer first — in order — then the shed tail's errors.
    std::string burst;
    for (int i = 0; i < 10; ++i) burst += "ping\n";
    ASSERT_TRUE(WriteAll(client.get(), burst).ok());
    std::vector<std::string> responses;
    for (int i = 0; i < 10; ++i) {
      Result<std::string> line = ReadLine(client.get(), &carry);
      ASSERT_TRUE(line.ok()) << line.status().ToString();
      responses.push_back(line.value());
    }
    for (int i = 0; i < 5; ++i) EXPECT_EQ(responses[i], "ok pong") << i;
    for (int i = 5; i < 10; ++i) {
      EXPECT_EQ(responses[i], "err overloaded") << i;
    }
    EXPECT_EQ(CounterValue("serve.shed.requests"), shed_before + 5);

    // The connection survives shedding: later requests are answered.
    EXPECT_EQ(Request(client.get(), "ping", &carry), "ok pong");
    stop.RequestCancel();
  }
}

TEST(ServerTest, SlowClientEvictedWhenOutBufferExceedsLimit) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.max_out_bytes = 16;  // three pong lines overflow it
  // Every server-side write hits EAGAIN, as if the client's receive
  // window never opens: responses pile up in `out` deterministically.
  Result<FaultInjector> injector = FaultInjector::Parse("write@1..=EAGAIN");
  ASSERT_TRUE(injector.ok());
  const uint64_t evictions_before = CounterValue("serve.evictions");
  {
    ServerFixture server(service, options, &injector.value());
    OwnedFd client = server.Connect();
    ASSERT_TRUE(WriteAll(client.get(), "ping\nping\nping\n").ok());
    // 3 * "ok pong\n" = 24 buffered bytes > 16: the client is evicted.
    EXPECT_TRUE(WaitForCounter("serve.evictions", evictions_before + 1));
    EXPECT_EQ(CounterValue("serve.evictions"), evictions_before + 1);
    // The eviction notice is best-effort and the write path is dead, so
    // the client simply observes the close.
    EXPECT_EQ(ReadUntilClosed(client.get()), "");
    stop.RequestCancel();
  }
}

TEST(ServerTest, StalledWriterEvictedAfterWriteStallTimeout) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  FakeClock clock(0.0);
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.write_stall_ms = 1000;
  options.clock = &clock;
  Result<FaultInjector> injector = FaultInjector::Parse("write@1..=EAGAIN");
  ASSERT_TRUE(injector.ok());
  const uint64_t evictions_before = CounterValue("serve.evictions");
  {
    ServerFixture server(service, options, &injector.value());
    OwnedFd client = server.Connect();
    ASSERT_TRUE(WriteAll(client.get(), "ping\n").ok());
    // The response is queued but unwritable; well under max_out_bytes, so
    // only the stall clock can evict. Step fake time until the server's
    // next round observes a stall older than write_stall_ms.
    for (int i = 0; i < 500; ++i) {
      if (CounterValue("serve.evictions") > evictions_before) break;
      clock.Advance(10.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(CounterValue("serve.evictions"), evictions_before + 1);
    EXPECT_EQ(ReadUntilClosed(client.get()), "");
    stop.RequestCancel();
  }
}

TEST(ServerTest, IdleConnectionEvictedAfterTimeoutWithNotice) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;
  FakeClock clock(0.0);
  ServerOptions options;
  options.stop = &stop;
  options.poll_interval_ms = 20;
  options.idle_timeout_ms = 500;
  options.clock = &clock;
  const uint64_t evictions_before = CounterValue("serve.evictions");
  {
    ServerFixture server(service, options);
    OwnedFd client = server.Connect();
    std::string carry;
    EXPECT_EQ(Request(client.get(), "ping", &carry), "ok pong");
    clock.Advance(10.0);  // well past the 500ms idle budget
    EXPECT_TRUE(WaitForCounter("serve.evictions", evictions_before + 1));
    // Writes are healthy here, so the documented notice is delivered
    // before the close.
    Result<std::string> notice = ReadLine(client.get(), &carry);
    ASSERT_TRUE(notice.ok()) << notice.status().ToString();
    EXPECT_EQ(notice.value(), "err idle timeout");
    EXPECT_EQ(ReadUntilClosed(client.get()), "");
    stop.RequestCancel();
  }
}

TEST(ServerTest, OverlongUnframedLineIsRejected) {
  const GeneratedDataset g = MakeData();
  ScoreService service;
  service.Publish(FitSnapshot(g));
  StopToken stop;  // server_test owns shutdown here: no protocol shutdown
  {
    ServerFixture server(service, &stop);
    OwnedFd client = server.Connect();
    // Default max_line_bytes is 1 MiB; stream 2 MiB without a newline.
    const std::string junk(64 * 1024, 'x');
    for (int i = 0; i < 32; ++i) {
      if (!WriteAll(client.get(), junk).ok()) break;  // server may close
    }
    std::string carry;
    Result<std::string> response = ReadLine(client.get(), &carry);
    if (response.ok()) {
      EXPECT_EQ(response.value(), "err line too long");
    }  // else: the server already closed the connection, also acceptable
    stop.RequestCancel();
  }
}

}  // namespace
}  // namespace serve
}  // namespace hido
