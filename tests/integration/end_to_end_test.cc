// Integration tests: the full pipeline (generate -> detect -> postprocess
// -> evaluate) on the paper's scenarios, at test-friendly scale.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/knn_outlier.h"
#include "core/detector.h"
#include "data/csv.h"
#include "data/generators/arrhythmia_like.h"
#include "data/generators/housing_like.h"
#include "data/generators/synthetic.h"
#include "eval/metrics.h"

namespace hido {
namespace {

std::vector<size_t> FlaggedRows(const DetectionResult& result) {
  std::vector<size_t> rows;
  for (const OutlierRecord& o : result.report.outliers) {
    rows.push_back(o.row);
  }
  return rows;
}

TEST(EndToEndTest, ArrhythmiaProtocolBeatsKnnBaseline) {
  // Scaled-down §3.1: the projection method's flagged rows should carry a
  // higher rare-class lift than the kNN-distance baseline's top picks.
  ArrhythmiaLikeConfig config;
  config.num_rows = 300;
  config.num_dims = 60;
  config.num_groups = 15;
  config.seed = 5;
  const ArrhythmiaLikeDataset g = GenerateArrhythmiaLike(config);

  DetectorConfig dconfig;
  dconfig.target_dim = 2;
  dconfig.phi = 4;  // matches the generator's 4 joint modes
  dconfig.num_projections = 30;
  dconfig.evolution.population_size = 80;
  dconfig.evolution.max_generations = 40;
  dconfig.evolution.restarts = 6;
  dconfig.seed = 2;
  const DetectionResult result = OutlierDetector(dconfig).Detect(g.data);
  const std::vector<size_t> flagged = FlaggedRows(result);
  ASSERT_FALSE(flagged.empty());
  const RareClassStats ours =
      EvaluateRareClasses(flagged, g.data.labels(), g.rare_classes);

  const DistanceMetric metric(g.data);
  KnnOutlierOptions kopts;
  kopts.k = 1;
  kopts.num_outliers = flagged.size();
  std::vector<size_t> knn_flagged;
  for (const KnnOutlier& o : TopNKnnOutliers(metric, kopts)) {
    knn_flagged.push_back(o.row);
  }
  const RareClassStats theirs =
      EvaluateRareClasses(knn_flagged, g.data.labels(), g.rare_classes);

  // The paper's headline: 43/85 vs 28/85. We assert the direction.
  EXPECT_GT(ours.precision, theirs.precision)
      << "ours " << ours.rare_flagged << "/" << ours.flagged << " vs knn "
      << theirs.rare_flagged << "/" << theirs.flagged;
  EXPECT_GT(ours.lift, 1.5);  // strongly over-represents rare classes
}

TEST(EndToEndTest, HousingContrariansSurfaceInTopOutliers) {
  const HousingLikeDataset g = GenerateHousingLike(11);
  DetectorConfig dconfig;
  dconfig.target_dim = 2;
  dconfig.phi = 5;
  dconfig.num_projections = 25;
  dconfig.evolution.population_size = 60;
  dconfig.evolution.max_generations = 60;
  dconfig.seed = 4;
  const DetectionResult result = OutlierDetector(dconfig).Detect(g.data);
  const std::vector<size_t> flagged = FlaggedRows(result);
  // At least one of the three planted contrarian records is flagged.
  size_t hits = 0;
  const std::set<size_t> flagged_set(flagged.begin(), flagged.end());
  for (size_t row : g.contrarian_rows) {
    hits += flagged_set.contains(row) ? 1 : 0;
  }
  EXPECT_GE(hits, 1u) << "flagged " << flagged.size() << " rows";
}

TEST(EndToEndTest, CsvRoundTripThroughDetector) {
  // Export a generated dataset to CSV, reload it, and verify the detector
  // produces identical projections — the drop-in-real-data path.
  SubspaceOutlierConfig config;
  config.num_points = 250;
  config.num_dims = 10;
  config.seed = 13;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);

  const std::string path = ::testing::TempDir() + "/hido_e2e.csv";
  ASSERT_TRUE(WriteCsv(g.data, path).ok());
  const Result<Dataset> reloaded = ReadCsv(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  DetectorConfig dconfig;
  dconfig.target_dim = 2;
  dconfig.phi = 5;
  dconfig.seed = 21;
  const DetectionResult a = OutlierDetector(dconfig).Detect(g.data);
  const DetectionResult b = OutlierDetector(dconfig).Detect(reloaded.value());
  ASSERT_EQ(a.report.projections.size(), b.report.projections.size());
  for (size_t i = 0; i < a.report.projections.size(); ++i) {
    EXPECT_EQ(a.report.projections[i].projection,
              b.report.projections[i].projection);
    EXPECT_EQ(a.report.projections[i].count, b.report.projections[i].count);
  }
  std::remove(path.c_str());
}

TEST(EndToEndTest, MissingDataPipelineStillFindsPlantedOutliers) {
  // §1.2's claim: projections can be mined with missing attribute values.
  SubspaceOutlierConfig config;
  config.num_points = 500;
  config.num_dims = 14;
  config.num_outliers = 5;
  config.missing_fraction = 0.03;
  config.seed = 23;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  ASSERT_TRUE(g.data.HasMissing());

  DetectorConfig dconfig;
  dconfig.target_dim = 2;
  dconfig.phi = 5;  // aligned with the generator's 5 joint modes
  dconfig.num_projections = 25;
  dconfig.evolution.population_size = 60;
  dconfig.evolution.max_generations = 50;
  dconfig.evolution.restarts = 8;
  dconfig.evolution.mutation.p1 = 0.5;
  dconfig.evolution.mutation.p2 = 0.5;
  dconfig.seed = 6;
  const DetectionResult result = OutlierDetector(dconfig).Detect(g.data);
  const double recall = RecallOfPlanted(FlaggedRows(result), g.outlier_rows);
  EXPECT_GT(recall, 0.0);
}

TEST(EndToEndTest, UniformNullModelFlagsFewPoints) {
  // On pure noise there is no structure; the best projections should cover
  // only a small fraction of the data (sanity against "everything is an
  // outlier").
  const Dataset data = GenerateUniform(1000, 12, 29);
  DetectorConfig dconfig;
  dconfig.target_dim = 2;
  dconfig.phi = 10;
  dconfig.num_projections = 10;
  dconfig.seed = 9;
  const DetectionResult result = OutlierDetector(dconfig).Detect(data);
  EXPECT_LT(result.report.outliers.size(), 150u);
}

}  // namespace
}  // namespace hido
