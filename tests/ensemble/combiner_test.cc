// Unit tests for the ensemble combiners (ensemble/combiner.h) and member
// descriptors (ensemble/member.h): name round-trips, mix parsing, seed
// derivation, normalization scales, the per-kind combine semantics, and
// the deterministic (score, covering, row) ranking order.

#include "ensemble/combiner.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ensemble/member.h"

namespace hido {
namespace ensemble {
namespace {

PointScore Score(size_t row, double sparsity, size_t covering) {
  PointScore s;
  s.row = row;
  s.sparsity_score = sparsity;
  s.covering_projections = covering;
  return s;
}

TEST(MemberKindTest, NamesRoundTrip) {
  for (const MemberKind kind :
       {MemberKind::kGa, MemberKind::kRandomSubspace, MemberKind::kHillClimb,
        MemberKind::kAnneal}) {
    MemberKind parsed;
    ASSERT_TRUE(ParseMemberKind(MemberKindToString(kind), &parsed))
        << MemberKindToString(kind);
    EXPECT_EQ(parsed, kind);
  }
  MemberKind parsed;
  EXPECT_FALSE(ParseMemberKind("genetic", &parsed));
  EXPECT_FALSE(ParseMemberKind("", &parsed));
}

TEST(MemberKindTest, ParseMemberMixAcceptsCycles) {
  const Result<std::vector<MemberKind>> mix =
      ParseMemberMix("ga,random-subspace,anneal");
  ASSERT_TRUE(mix.ok()) << mix.status().ToString();
  EXPECT_EQ(mix.value(),
            (std::vector<MemberKind>{MemberKind::kGa,
                                     MemberKind::kRandomSubspace,
                                     MemberKind::kAnneal}));
  EXPECT_FALSE(ParseMemberMix("").ok());
  EXPECT_FALSE(ParseMemberMix("ga,,anneal").ok());
  EXPECT_FALSE(ParseMemberMix("ga,warp-drive").ok());
}

TEST(MemberKindTest, ResolveMemberKindsCyclesAndDefaultsToGa) {
  const std::vector<MemberKind> mix = {MemberKind::kGa,
                                       MemberKind::kHillClimb};
  EXPECT_EQ(ResolveMemberKinds(mix, 5),
            (std::vector<MemberKind>{MemberKind::kGa, MemberKind::kHillClimb,
                                     MemberKind::kGa, MemberKind::kHillClimb,
                                     MemberKind::kGa}));
  EXPECT_EQ(ResolveMemberKinds({}, 3),
            (std::vector<MemberKind>{MemberKind::kGa, MemberKind::kGa,
                                     MemberKind::kGa}));
}

TEST(MemberKindTest, DeriveMemberSeedIsDeterministicAndDecorrelated) {
  EXPECT_EQ(DeriveMemberSeed(42, 0), DeriveMemberSeed(42, 0));
  EXPECT_NE(DeriveMemberSeed(42, 0), DeriveMemberSeed(42, 1));
  EXPECT_NE(DeriveMemberSeed(42, 0), DeriveMemberSeed(43, 0));
  // Stream 0 is reserved for non-ensemble runs: no member may collide with
  // the seed a plain single run at the same master seed would use.
  EXPECT_NE(DeriveMemberSeed(42, 0), 42u);
}

TEST(CombinerKindTest, NamesRoundTrip) {
  for (const CombinerKind kind :
       {CombinerKind::kBreadthFirst, CombinerKind::kCumulativeSum,
        CombinerKind::kMax, CombinerKind::kMeanNormalized}) {
    CombinerKind parsed;
    ASSERT_TRUE(ParseCombinerKind(CombinerKindToString(kind), &parsed))
        << CombinerKindToString(kind);
    EXPECT_EQ(parsed, kind);
  }
  CombinerKind parsed;
  EXPECT_FALSE(ParseCombinerKind("median", &parsed));
}

TEST(CombinerTest, MemberScoreScaleIsMaxAbnormality) {
  // Abnormality = -sparsity for covered rows; uncovered rows contribute 0.
  EXPECT_DOUBLE_EQ(
      MemberScoreScale({Score(0, -4.0, 2), Score(1, -1.5, 1),
                        Score(2, 0.0, 0)}),
      4.0);
  // No coverage at all (or only non-sparse cubes): scale degrades to 1.0
  // so normalization never divides by zero.
  EXPECT_DOUBLE_EQ(MemberScoreScale({Score(0, 0.0, 0)}), 1.0);
  EXPECT_DOUBLE_EQ(MemberScoreScale({Score(0, 2.0, 3)}), 1.0);
  EXPECT_DOUBLE_EQ(MemberScoreScale({}), 1.0);
}

// Two members over three rows; member 0 found row 0 strongly, member 1
// found row 2 strongly. Scales are 4 and 2.
std::vector<std::vector<PointScore>> TwoMembers() {
  return {{Score(0, -4.0, 2), Score(1, -1.0, 1), Score(2, 0.0, 0)},
          {Score(0, 0.0, 0), Score(1, -1.0, 1), Score(2, -2.0, 2)}};
}

TEST(CombinerTest, MeanNormalizedAveragesScaledAbnormalities) {
  const std::vector<EnsemblePointScore> combined = CombineMemberScores(
      CombinerKind::kMeanNormalized, TwoMembers(), {4.0, 2.0});
  ASSERT_EQ(combined.size(), 3u);
  EXPECT_DOUBLE_EQ(combined[0].score, (4.0 / 4.0 + 0.0) / 2);
  EXPECT_DOUBLE_EQ(combined[1].score, (1.0 / 4.0 + 1.0 / 2.0) / 2);
  EXPECT_DOUBLE_EQ(combined[2].score, (0.0 + 2.0 / 2.0) / 2);
  // Covering projections sum over members.
  EXPECT_EQ(combined[0].covering_projections, 2u);
  EXPECT_EQ(combined[1].covering_projections, 2u);
  EXPECT_EQ(combined[2].covering_projections, 2u);
}

TEST(CombinerTest, MaxTakesStrongestMemberInRawSparsityUnits) {
  // kMax is deliberately unnormalized: members share one grid/objective, so
  // member 0's depth-4 find must outrank member 1's depth-2 find even
  // though each is its own member's maximum.
  const std::vector<EnsemblePointScore> combined =
      CombineMemberScores(CombinerKind::kMax, TwoMembers(), {4.0, 2.0});
  EXPECT_DOUBLE_EQ(combined[0].score, 4.0);
  EXPECT_DOUBLE_EQ(combined[1].score, 1.0);
  EXPECT_DOUBLE_EQ(combined[2].score, 2.0);
}

TEST(CombinerTest, CumulativeSumAddsRawAbnormalities) {
  const std::vector<EnsemblePointScore> combined = CombineMemberScores(
      CombinerKind::kCumulativeSum, TwoMembers(), {4.0, 2.0});
  EXPECT_DOUBLE_EQ(combined[0].score, 4.0);
  EXPECT_DOUBLE_EQ(combined[1].score, 2.0);
  EXPECT_DOUBLE_EQ(combined[2].score, 2.0);
}

TEST(CombinerTest, BreadthFirstScoresByFirstAppearance) {
  // Member rankings (RankRows: most negative sparsity first, covered rows
  // only matter): member 0 -> [0, 1], member 1 -> [2, 1]. Breadth-first
  // interleave: depth 0 visits 0 then 2, depth 1 visits 1 (both members).
  const std::vector<EnsemblePointScore> combined = CombineMemberScores(
      CombinerKind::kBreadthFirst, TwoMembers(), {4.0, 2.0});
  // First appearances over n=3 rows: row 0 at position 0, row 2 at 1,
  // row 1 at 2 -> scores (3-0)/3, (3-1)/3, (3-2)/3.
  EXPECT_DOUBLE_EQ(combined[0].score, 1.0);
  EXPECT_DOUBLE_EQ(combined[2].score, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(combined[1].score, 1.0 / 3.0);
}

TEST(CombinerTest, UncoveredEverywhereScoresZero) {
  const std::vector<std::vector<PointScore>> members = {
      {Score(0, 0.0, 0)}, {Score(0, 0.0, 0)}};
  for (const CombinerKind kind :
       {CombinerKind::kBreadthFirst, CombinerKind::kCumulativeSum,
        CombinerKind::kMax, CombinerKind::kMeanNormalized}) {
    const std::vector<EnsemblePointScore> combined =
        CombineMemberScores(kind, members, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(combined[0].score, 0.0)
        << CombinerKindToString(kind);
    EXPECT_EQ(combined[0].covering_projections, 0u);
  }
}

TEST(CombinerTest, CombinePointMatchesMaxForBreadthFirst) {
  // A single out-of-sample point has no population to rank against, so
  // kBreadthFirst degrades to kMax (documented in serve/snapshot.h).
  const std::vector<PointScore> point = {Score(0, -3.0, 1),
                                         Score(0, -1.0, 2)};
  const std::vector<double> scales = {4.0, 2.0};
  const EnsemblePointScore bf =
      CombinePoint(CombinerKind::kBreadthFirst, point, scales);
  const EnsemblePointScore mx = CombinePoint(CombinerKind::kMax, point,
                                             scales);
  EXPECT_DOUBLE_EQ(bf.score, mx.score);
  EXPECT_EQ(bf.covering_projections, 3u);
}

TEST(CombinerTest, RankEnsembleRowsIsATotalOrder) {
  // Ties on score break by covering (more first), then row (lower first).
  std::vector<EnsemblePointScore> scores(4);
  scores[0] = {0, 0.5, 1};
  scores[1] = {1, 0.5, 3};
  scores[2] = {2, 0.9, 1};
  scores[3] = {3, 0.5, 3};
  EXPECT_EQ(RankEnsembleRows(scores),
            (std::vector<size_t>{2, 1, 3, 0}));
}

}  // namespace
}  // namespace ensemble
}  // namespace hido
