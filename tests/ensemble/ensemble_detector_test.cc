// Acceptance tests for the ensemble meta-detector
// (ensemble/ensemble_detector.h): the combined report is byte-identical
// across thread counts and cube-cache modes, members are decorrelated and
// diverse, the ensemble.* registry family publishes, and a stop degrades
// to a valid best-so-far ensemble instead of failing.

#include "ensemble/ensemble_detector.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_control.h"
#include "common/string_util.h"
#include "data/generators/synthetic.h"
#include "obs/metrics.h"

namespace hido {
namespace ensemble {
namespace {

Dataset MakeData() { return GenerateUniform(300, 8, 13); }

EnsembleConfig MakeConfig(size_t threads, CubeCacheMode cache_mode) {
  EnsembleConfig config;
  config.base.phi = 4;
  config.base.target_dim = 2;
  config.base.num_projections = 6;
  config.base.evolution.population_size = 24;
  config.base.evolution.max_generations = 10;
  config.base.evolution.stagnation_generations = 0;
  config.base.evolution.restarts = 1;
  config.base.seed = 29;
  config.base.num_threads = threads;
  config.base.cache_mode = cache_mode;
  config.ensemble.num_members = 4;
  config.ensemble.combiner = CombinerKind::kMeanNormalized;
  config.ensemble.mix = {MemberKind::kGa, MemberKind::kRandomSubspace,
                         MemberKind::kHillClimb, MemberKind::kAnneal};
  config.ensemble.subspace_evaluations = 3000;
  config.ensemble.local_evaluations = 3000;
  return config;
}

// Everything deterministic about a result, flattened to bytes: member
// identities and projections, combined scores, and the final ranking.
// Wall-clock fields are deliberately excluded.
std::string SerializeResult(const EnsembleDetectionResult& result) {
  std::string out = StrFormat("phi=%zu|k=%zu|combiner=%s\n", result.phi,
                              result.target_dim,
                              CombinerKindToString(result.combiner));
  for (const EnsembleMemberResult& member : result.members) {
    out += StrFormat("member %s seed=%llu scale=%.17g evals=%llu\n",
                     MemberKindToString(member.kind),
                     static_cast<unsigned long long>(member.seed),
                     member.score_scale,
                     static_cast<unsigned long long>(member.evaluations));
    for (const ScoredProjection& s : member.projections) {
      out += StrFormat("  %s|count=%zu|sparsity=%.17g\n",
                       s.projection.ToString().c_str(), s.count, s.sparsity);
    }
  }
  for (const EnsemblePointScore& s : result.scores) {
    out += StrFormat("row=%zu|score=%.17g|covering=%zu\n", s.row, s.score,
                     s.covering_projections);
  }
  for (const size_t row : result.ranked_rows) {
    out += StrFormat("%zu,", row);
  }
  out += "\n";
  return out;
}

// The tentpole acceptance criterion: one baseline at 1 thread / private
// cache, then every {threads} x {cache mode} combination must reproduce it
// byte for byte.
TEST(EnsembleDetectorTest, ResultBytesInvariantAcrossThreadsAndCacheModes) {
  const Dataset data = MakeData();
  const EnsembleDetectionResult baseline_result =
      EnsembleDetector(MakeConfig(1, CubeCacheMode::kPrivate)).Detect(data);
  ASSERT_TRUE(baseline_result.completed);
  const std::string baseline = SerializeResult(baseline_result);
  ASSERT_FALSE(baseline_result.scores.empty());

  for (const CubeCacheMode mode :
       {CubeCacheMode::kPrivate, CubeCacheMode::kShared,
        CubeCacheMode::kOff}) {
    for (const size_t threads : {1u, 2u, 8u}) {
      const EnsembleDetectionResult result =
          EnsembleDetector(MakeConfig(threads, mode)).Detect(data);
      EXPECT_TRUE(result.completed);
      EXPECT_EQ(SerializeResult(result), baseline)
          << "mode=" << CubeCacheModeToString(mode)
          << " threads=" << threads;
    }
  }
}

TEST(EnsembleDetectorTest, MembersAreDecorrelatedAndDiverse) {
  const Dataset data = MakeData();
  const EnsembleDetectionResult result =
      EnsembleDetector(MakeConfig(2, CubeCacheMode::kShared)).Detect(data);
  ASSERT_EQ(result.members.size(), 4u);
  EXPECT_EQ(result.members[0].kind, MemberKind::kGa);
  EXPECT_EQ(result.members[1].kind, MemberKind::kRandomSubspace);
  EXPECT_EQ(result.members[2].kind, MemberKind::kHillClimb);
  EXPECT_EQ(result.members[3].kind, MemberKind::kAnneal);
  for (size_t i = 0; i < result.members.size(); ++i) {
    EXPECT_FALSE(result.members[i].projections.empty()) << "member " << i;
    EXPECT_GT(result.members[i].evaluations, 0u) << "member " << i;
    for (size_t j = i + 1; j < result.members.size(); ++j) {
      EXPECT_NE(result.members[i].seed, result.members[j].seed)
          << i << " vs " << j;
    }
  }
  // The combined ranking covers every row exactly once.
  EXPECT_EQ(result.scores.size(), data.num_rows());
  EXPECT_EQ(result.ranked_rows.size(), data.num_rows());
}

TEST(EnsembleDetectorTest, PublishesEnsembleMetricsFamily) {
  obs::MetricsRegistry::Global().ResetForTest();
  const Dataset data = MakeData();
  EnsembleDetector(MakeConfig(1, CubeCacheMode::kShared)).Detect(data);
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().TakeSnapshot();

  auto counter = [&](const std::string& name) -> uint64_t {
    for (const obs::CounterSample& sample : snapshot.counters) {
      if (sample.name == name) return sample.value;
    }
    ADD_FAILURE() << "counter not published: " << name;
    return 0;
  };
  EXPECT_EQ(counter("ensemble.runs"), 1u);
  EXPECT_EQ(counter("ensemble.members_run"), 4u);
  EXPECT_GT(counter("ensemble.projections_reported"), 0u);

  bool saw_gauge = false;
  for (const obs::GaugeSample& sample : snapshot.gauges) {
    if (sample.name == "ensemble.cache.hit_amplification_pct") {
      saw_gauge = true;
    }
  }
  EXPECT_TRUE(saw_gauge);

  bool saw_member_duration = false;
  bool saw_combine = false;
  for (const obs::HistogramSample& sample : snapshot.histograms) {
    if (sample.name == "ensemble.member.duration_seconds") {
      saw_member_duration = true;
      EXPECT_EQ(sample.snapshot.total_count, 4u);
    }
    if (sample.name == "ensemble.combine.seconds") saw_combine = true;
  }
  EXPECT_TRUE(saw_member_duration);
  EXPECT_TRUE(saw_combine);
}

// With a shared cache, members after the first re-count mostly memoized
// cubes: the shared table must report hits once the later members run.
TEST(EnsembleDetectorTest, SharedCacheIsReusedAcrossMembers) {
  obs::MetricsRegistry::Global().ResetForTest();
  const Dataset data = MakeData();
  EnsembleConfig config = MakeConfig(1, CubeCacheMode::kShared);
  config.ensemble.mix = {MemberKind::kGa};  // identical strategy, new seeds
  EnsembleDetector(config).Detect(data);
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().TakeSnapshot();
  uint64_t hits = 0;
  for (const obs::CounterSample& sample : snapshot.counters) {
    if (sample.name == "cube.cache.shared.hits") hits = sample.value;
  }
  EXPECT_GT(hits, 0u);
}

TEST(EnsembleDetectorTest, StopDegradesToBestSoFarEnsemble) {
  const Dataset data = MakeData();
  EnsembleConfig config = MakeConfig(1, CubeCacheMode::kPrivate);
  StopToken token;
  // Budget chosen to trip after the grid build but before the last member:
  // polls come from the grid build, the GA (~one per generation), the
  // member loop (one per member), and random-subspace (one per 256 evals)
  // — the local-search members never poll, so the total is a few dozen.
  token.ArmFailpoint(20);
  config.base.stop = &token;
  const EnsembleDetectionResult result =
      EnsembleDetector(config).Detect(data);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.stop_cause, StopCause::kFailpoint);
  EXPECT_LT(result.members.size(), 4u);
  // Whatever completed before the stop is still combined and ranked.
  EXPECT_EQ(result.scores.size(), data.num_rows());
  EXPECT_EQ(result.ranked_rows.size(), data.num_rows());
}

TEST(EnsembleDetectorTest, ZeroMembersClampsToOne) {
  EnsembleConfig config = MakeConfig(1, CubeCacheMode::kOff);
  config.ensemble.num_members = 0;
  config.ensemble.mix.clear();
  const EnsembleDetector detector(config);
  EXPECT_EQ(detector.config().ensemble.num_members, 1u);
  const EnsembleDetectionResult result = detector.Detect(MakeData());
  ASSERT_EQ(result.members.size(), 1u);
  EXPECT_EQ(result.members[0].kind, MemberKind::kGa);
}

}  // namespace
}  // namespace ensemble
}  // namespace hido
