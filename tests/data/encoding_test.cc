#include "data/encoding.h"

#include <string>

#include <gtest/gtest.h>

#include "common/run_control.h"
#include "common/status.h"

namespace hido {
namespace {

TEST(EncodingTest, NumericColumnsPassThrough) {
  const Result<EncodedDataset> r =
      ReadCsvEncodedString("a,b\n1.5,2\n3,4\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().categorical.empty());
  EXPECT_DOUBLE_EQ(r.value().data.Get(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(r.value().data.Get(1, 1), 4.0);
}

TEST(EncodingTest, CategoricalColumnOrdinalEncoded) {
  const Result<EncodedDataset> r =
      ReadCsvEncodedString("color,x\nred,1\nblue,2\ngreen,3\nred,4\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const EncodedDataset& encoded = r.value();
  ASSERT_EQ(encoded.categorical.size(), 1u);
  EXPECT_EQ(encoded.categorical[0].column, 0u);
  // Sorted distinct values: blue=0, green=1, red=2.
  EXPECT_EQ(encoded.categorical[0].values,
            (std::vector<std::string>{"blue", "green", "red"}));
  EXPECT_DOUBLE_EQ(encoded.data.Get(0, 0), 2.0);  // red
  EXPECT_DOUBLE_EQ(encoded.data.Get(1, 0), 0.0);  // blue
  EXPECT_DOUBLE_EQ(encoded.data.Get(2, 0), 1.0);  // green
  EXPECT_DOUBLE_EQ(encoded.data.Get(3, 0), 2.0);  // red
}

TEST(EncodingTest, DecodeRoundTrip) {
  const Result<EncodedDataset> r =
      ReadCsvEncodedString("kind\ncat\ndog\ncat\n");
  ASSERT_TRUE(r.ok());
  const EncodedDataset& encoded = r.value();
  EXPECT_EQ(encoded.Decode(0, encoded.data.Get(0, 0)), "cat");
  EXPECT_EQ(encoded.Decode(0, encoded.data.Get(1, 0)), "dog");
  EXPECT_EQ(encoded.Decode(0, 99.0), "");   // out of range
  EXPECT_EQ(encoded.Decode(5, 0.0), "");    // not categorical
}

TEST(EncodingTest, MixedNumericLooking) {
  // A column with one non-numeric value is entirely categorical.
  const Result<EncodedDataset> r =
      ReadCsvEncodedString("v\n1\n2\nx\n1\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().categorical.size(), 1u);
  // Sorted distinct: "1"=0, "2"=1, "x"=2.
  EXPECT_DOUBLE_EQ(r.value().data.Get(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.value().data.Get(2, 0), 2.0);
}

TEST(EncodingTest, MissingStaysMissingInBothKinds) {
  const Result<EncodedDataset> r =
      ReadCsvEncodedString("cat,num\nred,?\n?,2\nblue,3\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().data.IsMissing(0, 1));
  EXPECT_TRUE(r.value().data.IsMissing(1, 0));
  EXPECT_DOUBLE_EQ(r.value().data.Get(2, 1), 3.0);
  // "?" is not a category value.
  EXPECT_EQ(r.value().categorical[0].values,
            (std::vector<std::string>{"blue", "red"}));
}

TEST(EncodingTest, LabelColumnExtracted) {
  CsvReadOptions opts;
  opts.label_column = 1;
  const Result<EncodedDataset> r =
      ReadCsvEncodedString("kind,class,x\na,7,1\nb,8,2\n", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const EncodedDataset& encoded = r.value();
  EXPECT_EQ(encoded.data.num_cols(), 2u);
  EXPECT_EQ(encoded.data.Label(0), 7);
  // Mapping indices refer to the label-free dataset.
  ASSERT_EQ(encoded.categorical.size(), 1u);
  EXPECT_EQ(encoded.categorical[0].column, 0u);
  EXPECT_EQ(encoded.data.ColumnName(1), "x");
}

TEST(EncodingTest, NonIntegerLabelFails) {
  CsvReadOptions opts;
  opts.label_column = 0;
  const Result<EncodedDataset> r =
      ReadCsvEncodedString("class,x\nsick,1\n", opts);
  EXPECT_FALSE(r.ok());
}

TEST(EncodingTest, RaggedRowsFail) {
  const Result<EncodedDataset> r = ReadCsvEncodedString("a,b\n1,2\n3\n");
  EXPECT_FALSE(r.ok());
}

TEST(EncodingTest, EmbeddedNulFailsInsteadOfBecomingACategory) {
  // A NUL byte means binary input; the categorical fallback must reject it
  // with line/column context rather than ordinal-encoding the garbage.
  const Result<EncodedDataset> r =
      ReadCsvEncodedString(std::string("a,b\nred,2\nblu\x00 e,4\n", 18));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("column 1"), std::string::npos)
      << r.status().ToString();
}

TEST(EncodingTest, OversizedFieldFailsWithContext) {
  CsvReadOptions opts;
  opts.max_field_bytes = 8;
  const Result<EncodedDataset> r =
      ReadCsvEncodedString("a,b\nred," + std::string(9, 'x') + "\n", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("column 2"), std::string::npos)
      << r.status().ToString();
}

TEST(EncodingTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvEncoded("/no/such/file.csv").ok());
}

TEST(EncodingTest, NoHeaderMode) {
  CsvReadOptions opts;
  opts.has_header = false;
  const Result<EncodedDataset> r = ReadCsvEncodedString("x,1\ny,2\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().data.num_rows(), 2u);
  EXPECT_EQ(r.value().data.ColumnName(0), "c0");
  ASSERT_EQ(r.value().categorical.size(), 1u);
}

TEST(EncodingTest, StopTokenFailpointAbortsEncodedRead) {
  std::string text = "cat,v\n";
  for (int i = 0; i < 5000; ++i) text += "x,1\n";
  StopToken token;
  token.ArmFailpoint(2);
  CsvReadOptions opts;
  opts.stop = &token;
  const Result<EncodedDataset> r = ReadCsvEncodedString(text, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(token.cause(), StopCause::kFailpoint);
}

TEST(EncodingTest, UnfiredStopTokenEncodesNormally) {
  StopToken token;
  CsvReadOptions opts;
  opts.stop = &token;
  const Result<EncodedDataset> r = ReadCsvEncodedString("cat,v\nx,1\ny,2\n", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().data.num_rows(), 2u);
  EXPECT_FALSE(token.stop_requested());
}

}  // namespace
}  // namespace hido
