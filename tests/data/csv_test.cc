#include "data/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/run_control.h"
#include "common/status.h"

namespace hido {
namespace {

TEST(CsvReadTest, BasicWithHeader) {
  const Result<Dataset> r = ReadCsvString("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Dataset& ds = r.value();
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.num_cols(), 2u);
  EXPECT_EQ(ds.ColumnName(0), "a");
  EXPECT_EQ(ds.Get(1, 1), 4.0);
}

TEST(CsvReadTest, NoHeader) {
  CsvReadOptions opts;
  opts.has_header = false;
  const Result<Dataset> r = ReadCsvString("1,2\n3,4\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST(CsvReadTest, MissingTokens) {
  const Result<Dataset> r = ReadCsvString("a,b\n1,?\n,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().IsMissing(0, 1));
  EXPECT_TRUE(r.value().IsMissing(1, 0));
  EXPECT_EQ(r.value().Get(1, 1), 2.0);
}

TEST(CsvReadTest, LabelColumnExtracted) {
  CsvReadOptions opts;
  opts.label_column = 1;
  const Result<Dataset> r = ReadCsvString("x,class,y\n1,7,2\n3,8,4\n", opts);
  ASSERT_TRUE(r.ok());
  const Dataset& ds = r.value();
  EXPECT_EQ(ds.num_cols(), 2u);
  EXPECT_EQ(ds.ColumnName(0), "x");
  EXPECT_EQ(ds.ColumnName(1), "y");
  ASSERT_TRUE(ds.has_labels());
  EXPECT_EQ(ds.Label(0), 7);
  EXPECT_EQ(ds.Label(1), 8);
  EXPECT_EQ(ds.Get(1, 1), 4.0);
}

TEST(CsvReadTest, CrlfAndTrailingNewlineTolerated) {
  const Result<Dataset> r = ReadCsvString("a\r\n1\r\n2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST(CsvReadTest, BlankLinesSkipped) {
  const Result<Dataset> r = ReadCsvString("a\n1\n\n2\n\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
}

TEST(CsvReadTest, CustomDelimiter) {
  CsvReadOptions opts;
  opts.delimiter = ';';
  const Result<Dataset> r = ReadCsvString("a;b\n1;2\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get(0, 1), 2.0);
}

TEST(CsvReadTest, RaggedRowFails) {
  const Result<Dataset> r = ReadCsvString("a,b\n1,2\n3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvReadTest, NonNumericFieldFails) {
  const Result<Dataset> r = ReadCsvString("a\nhello\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvReadTest, BadLabelFails) {
  CsvReadOptions opts;
  opts.label_column = 0;
  const Result<Dataset> r = ReadCsvString("class,x\nabc,1\n", opts);
  EXPECT_FALSE(r.ok());
}

TEST(CsvReadTest, LabelColumnOutOfRangeFails) {
  CsvReadOptions opts;
  opts.label_column = 5;
  const Result<Dataset> r = ReadCsvString("a,b\n1,2\n", opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvReadTest, EmbeddedNulFailsWithLineAndColumn) {
  const Result<Dataset> r =
      ReadCsvString(std::string("a,b\n1,2\n3,4\x00 5\n", 15));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("column 2"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvReadTest, EmbeddedNulInHeaderFails) {
  const Result<Dataset> r = ReadCsvString(std::string("a,b\x00 c\n1,2\n", 11));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvReadTest, OversizedFieldFailsWithContext) {
  CsvReadOptions opts;
  opts.max_field_bytes = 16;
  const std::string huge(17, '7');
  const Result<Dataset> r = ReadCsvString("a,b\n1," + huge + "\n", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("column 2"), std::string::npos)
      << r.status().ToString();
  // At the cap exactly is fine.
  const std::string at_cap(16, '7');
  EXPECT_TRUE(ReadCsvString("a,b\n1," + at_cap + "\n", opts).ok());
}

TEST(CsvReadTest, TooManyColumnsFails) {
  CsvReadOptions opts;
  opts.max_columns = 3;
  EXPECT_TRUE(ReadCsvString("a,b,c\n1,2,3\n", opts).ok());
  const Result<Dataset> r = ReadCsvString("a,b,c,d\n1,2,3,4\n", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvReadTest, SizeCapsCanBeDisabled) {
  CsvReadOptions opts;
  opts.max_field_bytes = 0;
  opts.max_columns = 0;
  const std::string huge = "0." + std::string(10000, '1');
  EXPECT_TRUE(ReadCsvString("a\n" + huge + "\n", opts).ok());
}

TEST(CsvReadTest, RaggedRowErrorNamesTheLine) {
  const Result<Dataset> r = ReadCsvString("a,b\n1,2\n3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvReadTest, GarbageFieldErrorNamesLineAndColumn) {
  const Result<Dataset> r = ReadCsvString("a,b\n1,2\n3,@!garbage\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("column 2"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvReadTest, MissingFileFails) {
  const Result<Dataset> r = ReadCsv("/nonexistent/path/data.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvRoundTripTest, WriteThenReadPreservesEverything) {
  Dataset ds = Dataset::FromRows({{1.5, 2.0}, {3.25, 4.0}}, {"p", "q"});
  ds.SetMissing(1, 0);
  ds.SetLabels({3, 9});

  CsvReadOptions ropts;
  ropts.label_column = 2;  // label appended as last column
  const Result<Dataset> r = ReadCsvString(WriteCsvString(ds), ropts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Dataset& back = r.value();
  EXPECT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.num_cols(), 2u);
  EXPECT_EQ(back.ColumnName(0), "p");
  EXPECT_DOUBLE_EQ(back.Get(0, 0), 1.5);
  EXPECT_TRUE(back.IsMissing(1, 0));
  EXPECT_EQ(back.Label(0), 3);
  EXPECT_EQ(back.Label(1), 9);
}

TEST(CsvRoundTripTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hido_csv_test.csv";
  const Dataset ds = Dataset::FromRows({{1.0}, {2.0}}, {"v"});
  ASSERT_TRUE(WriteCsv(ds, path).ok());
  const Result<Dataset> r = ReadCsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 2u);
  std::remove(path.c_str());
}

TEST(CsvReadTest, StopTokenFailpointAbortsRead) {
  // Loading is all-or-nothing: a stop mid-read returns a Status, never a
  // truncated Dataset.
  std::string text = "a,b\n";
  for (int i = 0; i < 5000; ++i) text += "1,2\n";
  StopToken token;
  token.ArmFailpoint(2);  // entry poll passes; the first stride poll fires
  CsvReadOptions opts;
  opts.stop = &token;
  const Result<Dataset> r = ReadCsvString(text, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(token.cause(), StopCause::kFailpoint);
}

TEST(CsvReadTest, PreCancelledTokenAbortsImmediately) {
  StopToken token;
  token.RequestCancel();
  CsvReadOptions opts;
  opts.stop = &token;
  const Result<Dataset> r = ReadCsvString("a,b\n1,2\n", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(CsvReadTest, UnfiredStopTokenReadsNormally) {
  StopToken token;
  CsvReadOptions opts;
  opts.stop = &token;
  const Result<Dataset> r = ReadCsvString("a,b\n1,2\n3,4\n", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_rows(), 2u);
  EXPECT_FALSE(token.stop_requested());
}

TEST(CsvWriteTest, HeaderOptional) {
  const Dataset ds = Dataset::FromRows({{1.0}});
  CsvWriteOptions opts;
  opts.write_header = false;
  EXPECT_EQ(WriteCsvString(ds, opts), "1\n");
}

}  // namespace
}  // namespace hido
