#include "data/transforms.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "data/column_stats.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(MinMaxNormalizeTest, MapsToUnitInterval) {
  Dataset ds = Dataset::FromRows({{10.0, -1.0}, {20.0, 0.0}, {30.0, 3.0}});
  MinMaxNormalize(ds);
  EXPECT_DOUBLE_EQ(ds.Get(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ds.Get(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.Get(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(ds.Get(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ds.Get(2, 1), 1.0);
}

TEST(MinMaxNormalizeTest, ConstantColumnBecomesZero) {
  Dataset ds = Dataset::FromRows({{7.0}, {7.0}});
  MinMaxNormalize(ds);
  EXPECT_DOUBLE_EQ(ds.Get(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ds.Get(1, 0), 0.0);
}

TEST(MinMaxNormalizeTest, MissingPreserved) {
  Dataset ds(1);
  ds.AppendRow({1.0});
  ds.AppendRow({kNaN});
  ds.AppendRow({3.0});
  MinMaxNormalize(ds);
  EXPECT_TRUE(ds.IsMissing(1, 0));
  EXPECT_DOUBLE_EQ(ds.Get(2, 0), 1.0);
}

TEST(ZScoreNormalizeTest, ZeroMeanUnitVariance) {
  Dataset ds = GenerateUniform(500, 3, 5);
  ZScoreNormalize(ds);
  for (size_t c = 0; c < 3; ++c) {
    const ColumnStats stats = ComputeColumnStats(ds, c);
    EXPECT_NEAR(stats.mean, 0.0, 1e-9);
    EXPECT_NEAR(stats.stddev, 1.0, 1e-9);
  }
}

TEST(JitterTest, BoundedAndDeterministic) {
  Dataset a = Dataset::FromRows({{1.0, 2.0}, {1.0, 2.0}});
  Dataset b = a;
  Jitter(a, 0.01, 7);
  Jitter(b, 0.01, 7);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(a.Get(r, c), b.Get(r, c));  // deterministic
      EXPECT_NEAR(a.Get(r, c), c + 1.0, 0.01);
    }
  }
  // Ties actually broken.
  EXPECT_NE(a.Get(0, 0), a.Get(1, 0));
}

TEST(JitterTest, ZeroAmplitudeIsIdentity) {
  Dataset ds = Dataset::FromRows({{5.0}});
  Jitter(ds, 0.0, 1);
  EXPECT_DOUBLE_EQ(ds.Get(0, 0), 5.0);
}

TEST(JitterTest, RescuesTiedColumnsForEquiDepth) {
  // An integer-coded column with heavy ties collapses equi-depth ranges;
  // jitter restores balanced ranges without changing the ordering of
  // distinct values.
  Dataset ds(1);
  for (int v = 0; v < 4; ++v) {
    for (int i = 0; i < 25; ++i) ds.AppendRow({static_cast<double>(v)});
  }
  Jitter(ds, 1e-6, 3);
  GridModel::Options gopts;
  gopts.phi = 4;
  const GridModel grid = GridModel::Build(ds, gopts);
  for (uint32_t cell = 0; cell < 4; ++cell) {
    EXPECT_EQ(grid.RangeCardinality(0, cell), 25u) << cell;
  }
}

TEST(SplitRowsTest, PartitionsRows) {
  Dataset ds = GenerateUniform(400, 2, 9);
  ds.SetLabels(std::vector<int32_t>(400, 1));
  const auto [first, second] = SplitRows(ds, 0.7, 11);
  EXPECT_EQ(first.num_rows() + second.num_rows(), 400u);
  EXPECT_NEAR(static_cast<double>(first.num_rows()) / 400.0, 0.7, 0.07);
  EXPECT_TRUE(first.has_labels());
  EXPECT_TRUE(second.has_labels());
}

TEST(SplitRowsTest, ExtremeFractions) {
  const Dataset ds = GenerateUniform(50, 2, 10);
  const auto [all, none] = SplitRows(ds, 1.0, 1);
  EXPECT_EQ(all.num_rows(), 50u);
  EXPECT_EQ(none.num_rows(), 0u);
}

}  // namespace
}  // namespace hido
