#include "data/dataset.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace hido {
namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(DatasetTest, EmptyDataset) {
  Dataset ds(3);
  EXPECT_EQ(ds.num_rows(), 0u);
  EXPECT_EQ(ds.num_cols(), 3u);
  EXPECT_FALSE(ds.HasMissing());
  EXPECT_FALSE(ds.has_labels());
}

TEST(DatasetTest, AppendAndGet) {
  Dataset ds(2);
  ds.AppendRow({1.0, 2.0});
  ds.AppendRow({3.0, 4.0});
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.Get(0, 0), 1.0);
  EXPECT_EQ(ds.Get(1, 1), 4.0);
  EXPECT_EQ(ds.Row(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(ds.Column(0), (std::vector<double>{1.0, 3.0}));
}

TEST(DatasetTest, FromRows) {
  const Dataset ds = Dataset::FromRows({{1.0, 2.0}, {3.0, 4.0}}, {"a", "b"});
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.num_cols(), 2u);
  EXPECT_EQ(ds.ColumnName(0), "a");
  EXPECT_EQ(ds.ColumnName(1), "b");
}

TEST(DatasetTest, NanInAppendRowBecomesMissing) {
  Dataset ds(2);
  ds.AppendRow({1.0, kNaN});
  EXPECT_FALSE(ds.IsMissing(0, 0));
  EXPECT_TRUE(ds.IsMissing(0, 1));
  EXPECT_TRUE(ds.HasMissing());
  EXPECT_EQ(ds.PresentCount(0), 1u);
  EXPECT_EQ(ds.PresentCount(1), 0u);
  EXPECT_EQ(ds.GetOr(0, 1, -5.0), -5.0);
}

TEST(DatasetTest, SetMissingAndSetClearEachOther) {
  Dataset ds(1);
  ds.AppendRow({7.0});
  ds.SetMissing(0, 0);
  EXPECT_TRUE(ds.IsMissing(0, 0));
  ds.Set(0, 0, 9.0);
  EXPECT_FALSE(ds.IsMissing(0, 0));
  EXPECT_EQ(ds.Get(0, 0), 9.0);
}

TEST(DatasetTest, MissingMaskOnlyOnAffectedColumns) {
  Dataset ds(3);
  ds.AppendRow({1.0, 2.0, 3.0});
  ds.AppendRow({4.0, kNaN, 6.0});
  EXPECT_EQ(ds.PresentCount(0), 2u);
  EXPECT_EQ(ds.PresentCount(1), 1u);
  EXPECT_EQ(ds.PresentCount(2), 2u);
  // Earlier rows of a late-missing column stay present.
  EXPECT_FALSE(ds.IsMissing(0, 1));
}

TEST(DatasetTest, DefaultColumnNames) {
  Dataset ds(2);
  EXPECT_EQ(ds.ColumnName(0), "c0");
  EXPECT_EQ(ds.ColumnName(1), "c1");
  ds.SetColumnName(1, "price");
  EXPECT_EQ(ds.ColumnName(1), "price");
  EXPECT_EQ(ds.FindColumn("price"), 1u);
  EXPECT_EQ(ds.FindColumn("ghost"), ds.num_cols());
}

TEST(DatasetTest, Labels) {
  Dataset ds(1);
  ds.AppendRow({0.0});
  ds.AppendRow({1.0});
  ds.SetLabels({5, 9});
  ASSERT_TRUE(ds.has_labels());
  EXPECT_EQ(ds.Label(0), 5);
  EXPECT_EQ(ds.Label(1), 9);
}

TEST(DatasetTest, AppendZeroRows) {
  Dataset ds(2);
  ds.AppendRow({1.0, 1.0});
  const size_t first = ds.AppendZeroRows(3);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(ds.num_rows(), 4u);
  EXPECT_EQ(ds.Get(3, 1), 0.0);
}

TEST(DatasetTest, SelectColumns) {
  Dataset ds = Dataset::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}},
                                 {"a", "b", "c"});
  ds.SetLabels({1, 2});
  const Dataset sub = ds.SelectColumns({2, 0});
  EXPECT_EQ(sub.num_cols(), 2u);
  EXPECT_EQ(sub.Get(0, 0), 3.0);
  EXPECT_EQ(sub.Get(1, 1), 4.0);
  EXPECT_EQ(sub.ColumnName(0), "c");
  EXPECT_EQ(sub.Label(1), 2);
}

TEST(DatasetTest, SelectRows) {
  Dataset ds = Dataset::FromRows({{1.0}, {2.0}, {3.0}});
  ds.SetLabels({10, 20, 30});
  const Dataset sub = ds.SelectRows({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.Get(0, 0), 3.0);
  EXPECT_EQ(sub.Get(1, 0), 1.0);
  EXPECT_EQ(sub.Label(0), 30);
}

TEST(DatasetTest, SelectRowsCarriesMissing) {
  Dataset ds(2);
  ds.AppendRow({1.0, kNaN});
  ds.AppendRow({2.0, 5.0});
  const Dataset sub = ds.SelectRows({0});
  EXPECT_TRUE(sub.IsMissing(0, 1));
  EXPECT_FALSE(sub.IsMissing(0, 0));
}

TEST(DatasetDeathTest, RaggedRowAborts) {
  Dataset ds(2);
  EXPECT_DEATH(ds.AppendRow({1.0}), "width");
}

TEST(DatasetDeathTest, LabelSizeMismatchAborts) {
  Dataset ds(1);
  ds.AppendRow({1.0});
  EXPECT_DEATH(ds.SetLabels({1, 2}), "labels");
}

TEST(DatasetDeathTest, AppendAfterLabelsAborts) {
  Dataset ds(1);
  ds.AppendRow({1.0});
  ds.SetLabels({1});
  EXPECT_DEATH(ds.AppendRow({2.0}), "labels");
}

TEST(DatasetDeathTest, SetNonFiniteAborts) {
  Dataset ds(1);
  ds.AppendRow({1.0});
  EXPECT_DEATH(ds.Set(0, 0, kNaN), "SetMissing");
}

}  // namespace
}  // namespace hido
