#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "data/column_stats.h"
#include "data/generators/arrhythmia_like.h"
#include "data/generators/housing_like.h"
#include "data/generators/synthetic.h"
#include "data/generators/uci_like.h"

namespace hido {
namespace {

TEST(SubspaceOutlierGeneratorTest, ShapeAndGroundTruth) {
  SubspaceOutlierConfig config;
  config.num_points = 500;
  config.num_dims = 12;
  config.num_outliers = 7;
  config.seed = 1;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  EXPECT_EQ(g.data.num_rows(), 500u);
  EXPECT_EQ(g.data.num_cols(), 12u);
  EXPECT_EQ(g.outlier_rows.size(), 7u);
  EXPECT_EQ(g.outlier_dims.size(), 7u);
  EXPECT_EQ(g.groups.size(), 4u);  // default num_groups
  for (size_t row : g.outlier_rows) {
    EXPECT_LT(row, 500u);
  }
  std::set<size_t> grouped_dims;
  for (const auto& group : g.groups) {
    EXPECT_EQ(group.size(), 2u);  // default group_dims
    for (size_t d : group) {
      EXPECT_LT(d, 12u);
      EXPECT_TRUE(grouped_dims.insert(d).second);  // groups disjoint
    }
  }
  for (const auto& dims : g.outlier_dims) {
    EXPECT_EQ(dims.size(), config.outlier_subspace_dims);
    EXPECT_TRUE(std::is_sorted(dims.begin(), dims.end()));
    // Each anomaly's deviating dims lie inside a single correlated group.
    bool inside_one_group = false;
    for (const auto& group : g.groups) {
      inside_one_group |= std::includes(group.begin(), group.end(),
                                        dims.begin(), dims.end());
    }
    EXPECT_TRUE(inside_one_group);
  }
}

TEST(SubspaceOutlierGeneratorTest, PlantedCellIsUnique) {
  // The defining property: with phi = modes_per_group equi-depth ranges,
  // each planted anomaly is the ONLY point in its deviating 2-d cell.
  SubspaceOutlierConfig config;
  config.num_points = 600;
  config.num_dims = 16;
  config.num_groups = 5;
  config.num_outliers = 5;
  config.seed = 77;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);

  // Discretize each deviating dim by the empirical quintiles.
  auto cell_of = [&](size_t dim, double value) {
    std::vector<double> column = g.data.Column(dim);
    std::sort(column.begin(), column.end());
    size_t cell = 0;
    for (size_t q = 1; q < 5; ++q) {
      if (value > column[column.size() * q / 5]) cell = q;
    }
    return cell;
  };
  for (size_t o = 0; o < g.outlier_rows.size(); ++o) {
    const size_t row = g.outlier_rows[o];
    const size_t d0 = g.outlier_dims[o][0];
    const size_t d1 = g.outlier_dims[o][1];
    const size_t c0 = cell_of(d0, g.data.Get(row, d0));
    const size_t c1 = cell_of(d1, g.data.Get(row, d1));
    size_t occupants = 0;
    for (size_t r = 0; r < g.data.num_rows(); ++r) {
      if (cell_of(d0, g.data.Get(r, d0)) == c0 &&
          cell_of(d1, g.data.Get(r, d1)) == c1) {
        ++occupants;
      }
    }
    EXPECT_LE(occupants, 2u) << "outlier " << o;  // itself (+rare twin)
  }
}

TEST(SubspaceOutlierGeneratorTest, DeterministicPerSeed) {
  SubspaceOutlierConfig config;
  config.num_points = 100;
  config.num_dims = 10;
  config.seed = 42;
  const GeneratedDataset a = GenerateSubspaceOutliers(config);
  const GeneratedDataset b = GenerateSubspaceOutliers(config);
  for (size_t r = 0; r < 100; ++r) {
    for (size_t c = 0; c < 10; ++c) {
      EXPECT_EQ(a.data.Get(r, c), b.data.Get(r, c));
    }
  }
  EXPECT_EQ(a.outlier_rows, b.outlier_rows);
}

TEST(SubspaceOutlierGeneratorTest, DifferentSeedsDiffer) {
  SubspaceOutlierConfig config;
  config.num_points = 50;
  config.num_dims = 10;
  config.seed = 1;
  const GeneratedDataset a = GenerateSubspaceOutliers(config);
  config.seed = 2;
  const GeneratedDataset b = GenerateSubspaceOutliers(config);
  bool any_diff = false;
  for (size_t r = 0; r < 50 && !any_diff; ++r) {
    for (size_t c = 0; c < 10 && !any_diff; ++c) {
      any_diff = a.data.Get(r, c) != b.data.Get(r, c);
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SubspaceOutlierGeneratorTest, ValuesInUnitInterval) {
  SubspaceOutlierConfig config;
  config.num_points = 300;
  config.num_dims = 8;
  config.seed = 3;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  for (size_t c = 0; c < g.data.num_cols(); ++c) {
    const ColumnStats s = ComputeColumnStats(g.data, c);
    EXPECT_GE(s.min, 0.0);
    EXPECT_LT(s.max, 1.0);
  }
}

TEST(SubspaceOutlierGeneratorTest, MissingFractionApplied) {
  SubspaceOutlierConfig config;
  config.num_points = 400;
  config.num_dims = 10;
  config.missing_fraction = 0.1;
  config.seed = 4;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  size_t missing = 0;
  for (size_t c = 0; c < 10; ++c) {
    missing += 400 - g.data.PresentCount(c);
  }
  const double fraction = static_cast<double>(missing) / 4000.0;
  EXPECT_NEAR(fraction, 0.1, 0.03);
}

TEST(SubspaceOutlierGeneratorTest, InvalidConfigAborts) {
  SubspaceOutlierConfig config;
  config.num_points = 10;
  config.num_dims = 5;
  config.num_groups = 4;
  config.group_dims = 2;  // 8 > 5 dims
  EXPECT_DEATH(GenerateSubspaceOutliers(config), "groups need");
  config.num_groups = 1;
  config.outlier_subspace_dims = 3;  // > group_dims
  EXPECT_DEATH(GenerateSubspaceOutliers(config), "outlier_subspace_dims");
}

TEST(UniformGeneratorTest, ShapeAndRange) {
  const Dataset ds = GenerateUniform(200, 5, 9);
  EXPECT_EQ(ds.num_rows(), 200u);
  EXPECT_EQ(ds.num_cols(), 5u);
  const ColumnStats s = ComputeColumnStats(ds, 0);
  EXPECT_GE(s.min, 0.0);
  EXPECT_LT(s.max, 1.0);
  EXPECT_NEAR(s.mean, 0.5, 0.1);
}

TEST(GaussianMixtureGeneratorTest, ClusterSpreadIsTight) {
  const Dataset ds = GenerateGaussianMixture(500, 4, 3, 0.01, 11);
  EXPECT_EQ(ds.num_rows(), 500u);
  // With sigma 0.01 and 3 clusters, per-column stddev is dominated by the
  // cluster-center spread, well below the uniform 0.29.
  const ColumnStats s = ComputeColumnStats(ds, 0);
  EXPECT_LT(s.stddev, 0.35);
  EXPECT_GT(s.distinct, 100u);
}

TEST(UciLikePresetsTest, Table1ShapesMatchPaper) {
  const auto& presets = Table1Presets();
  ASSERT_EQ(presets.size(), 5u);
  EXPECT_EQ(presets[0].name, "breast_cancer");
  EXPECT_EQ(presets[0].num_dims, 14u);
  EXPECT_EQ(presets[1].name, "ionosphere");
  EXPECT_EQ(presets[1].num_dims, 34u);
  EXPECT_EQ(presets[2].name, "segmentation");
  EXPECT_EQ(presets[2].num_dims, 19u);
  EXPECT_EQ(presets[3].name, "musk");
  EXPECT_EQ(presets[3].num_dims, 160u);
  EXPECT_FALSE(presets[3].brute_force_feasible);
  EXPECT_EQ(presets[4].name, "machine");
  EXPECT_EQ(presets[4].num_dims, 8u);
}

TEST(UciLikePresetsTest, GenerateMatchesPresetShape) {
  const UciLikePreset& preset = FindPreset("machine");
  const GeneratedDataset g = GenerateUciLike(preset, 5);
  EXPECT_EQ(g.data.num_rows(), preset.num_rows);
  EXPECT_EQ(g.data.num_cols(), preset.num_dims);
  EXPECT_GT(g.outlier_rows.size(), 0u);
}

class UciPresetSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(UciPresetSweep, EveryPresetGeneratesItsShape) {
  const UciLikePreset& preset = Table1Presets()[GetParam()];
  const GeneratedDataset g = GenerateUciLike(preset, 99);
  EXPECT_EQ(g.data.num_rows(), preset.num_rows);
  EXPECT_EQ(g.data.num_cols(), preset.num_dims);
  EXPECT_FALSE(g.outlier_rows.empty());
  EXPECT_FALSE(g.groups.empty());
  // Ground-truth rows are valid and distinct.
  std::set<size_t> rows(g.outlier_rows.begin(), g.outlier_rows.end());
  EXPECT_EQ(rows.size(), g.outlier_rows.size());
  for (size_t row : rows) EXPECT_LT(row, preset.num_rows);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, UciPresetSweep,
                         ::testing::Range<size_t>(0, 5),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return Table1Presets()[info.param].name;
                         });

TEST(UciLikePresetsTest, UnknownPresetAborts) {
  EXPECT_DEATH(FindPreset("nope"), "unknown");
}

TEST(ArrhythmiaLikeTest, ShapeAndClassDistribution) {
  const ArrhythmiaLikeDataset g = GenerateArrhythmiaLike();
  EXPECT_EQ(g.data.num_rows(), 452u);
  EXPECT_EQ(g.data.num_cols(), 279u);
  ASSERT_TRUE(g.data.has_labels());

  // Table 2: rare classes cover 14.6% of instances.
  const std::set<int32_t> rare(g.rare_classes.begin(), g.rare_classes.end());
  size_t rare_count = 0;
  for (size_t r = 0; r < g.data.num_rows(); ++r) {
    rare_count += rare.contains(g.data.Label(r)) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(rare_count) / 452.0, 0.146, 0.005);
  EXPECT_EQ(g.rare_rows.size(), rare_count);

  // All 13 classes present.
  std::set<int32_t> classes;
  for (size_t r = 0; r < g.data.num_rows(); ++r) {
    classes.insert(g.data.Label(r));
  }
  EXPECT_EQ(classes.size(), 13u);
}

TEST(ArrhythmiaLikeTest, RareRowsCarryRareLabels) {
  const ArrhythmiaLikeDataset g = GenerateArrhythmiaLike();
  const std::set<int32_t> rare(g.rare_classes.begin(), g.rare_classes.end());
  for (size_t row : g.rare_rows) {
    EXPECT_TRUE(rare.contains(g.data.Label(row)));
  }
}

TEST(ArrhythmiaLikeTest, RecordingErrorsOutOfScale) {
  const ArrhythmiaLikeDataset g = GenerateArrhythmiaLike();
  EXPECT_EQ(g.recording_error_rows.size(), 2u);
  for (size_t row : g.recording_error_rows) {
    // At least one coordinate far outside [0, 1].
    bool extreme = false;
    for (size_t c = 0; c < g.data.num_cols(); ++c) {
      const double v = g.data.Get(row, c);
      if (v > 2.0 || v < -2.0) extreme = true;
    }
    EXPECT_TRUE(extreme) << "row " << row;
  }
}

TEST(ArrhythmiaLikeTest, ScaledRowCountKeepsProportions) {
  ArrhythmiaLikeConfig config;
  config.num_rows = 904;  // 2x
  const ArrhythmiaLikeDataset g = GenerateArrhythmiaLike(config);
  EXPECT_EQ(g.data.num_rows(), 904u);
  EXPECT_NEAR(static_cast<double>(g.rare_rows.size()) / 904.0, 0.146, 0.01);
}

TEST(HousingLikeTest, ShapeAndNames) {
  const HousingLikeDataset g = GenerateHousingLike();
  EXPECT_EQ(g.data.num_rows(), 506u);
  EXPECT_EQ(g.data.num_cols(), 13u);
  EXPECT_NE(g.data.FindColumn("crime_rate"), g.data.num_cols());
  EXPECT_NE(g.data.FindColumn("median_price"), g.data.num_cols());
  ASSERT_EQ(g.contrarian_rows.size(), 3u);
  ASSERT_EQ(g.contrarian_cols.size(), 3u);
}

TEST(HousingLikeTest, BackgroundCorrelationsMatchNarrative) {
  const HousingLikeDataset g = GenerateHousingLike(123);
  const size_t crime = g.data.FindColumn("crime_rate");
  const size_t highway = g.data.FindColumn("highway_access");
  const size_t dist = g.data.FindColumn("dist_employment");
  const size_t nox = g.data.FindColumn("nox");
  const size_t age = g.data.FindColumn("age_pre1940");

  std::vector<double> log_crime;
  for (double v : g.data.Column(crime)) log_crime.push_back(std::log(v));
  // High crime <-> high highway accessibility.
  EXPECT_GT(PearsonCorrelation(log_crime, g.data.Column(highway)), 0.4);
  // The paper's narrative: high-crime localities are far from employment.
  EXPECT_GT(PearsonCorrelation(log_crime, g.data.Column(dist)), 0.4);
  // Old housing stock <-> NOx.
  EXPECT_GT(PearsonCorrelation(g.data.Column(age), g.data.Column(nox)), 0.4);
}

TEST(HousingLikeTest, ContrarianValuesMatchPaper) {
  const HousingLikeDataset g = GenerateHousingLike();
  const size_t crime = g.data.FindColumn("crime_rate");
  const size_t pt = g.data.FindColumn("pupil_teacher");
  const size_t dist = g.data.FindColumn("dist_employment");
  const size_t row = g.contrarian_rows[0];
  EXPECT_DOUBLE_EQ(g.data.Get(row, crime), 1.628);
  EXPECT_DOUBLE_EQ(g.data.Get(row, pt), 21.20);
  EXPECT_DOUBLE_EQ(g.data.Get(row, dist), 1.4394);
}

}  // namespace
}  // namespace hido
