#include "data/column_stats.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(ColumnStatsTest, BasicColumn) {
  const Dataset ds = Dataset::FromRows({{1.0}, {2.0}, {3.0}, {4.0}});
  const ColumnStats s = ComputeColumnStats(ds, 0);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.missing, 0u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.median, 2.5, 1e-12);
  EXPECT_EQ(s.distinct, 4u);
}

TEST(ColumnStatsTest, MissingValuesExcluded) {
  Dataset ds(1);
  ds.AppendRow({1.0});
  ds.AppendRow({std::numeric_limits<double>::quiet_NaN()});
  ds.AppendRow({3.0});
  const ColumnStats s = ComputeColumnStats(ds, 0);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.missing, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(ColumnStatsTest, DistinctCountsTies) {
  const Dataset ds = Dataset::FromRows({{5.0}, {5.0}, {7.0}});
  EXPECT_EQ(ComputeColumnStats(ds, 0).distinct, 2u);
}

TEST(ColumnStatsTest, AllColumns) {
  const Dataset ds = Dataset::FromRows({{1.0, 10.0}, {2.0, 20.0}});
  const std::vector<ColumnStats> all = ComputeAllColumnStats(ds);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[1].mean, 15.0);
}

TEST(DescribeDatasetTest, MentionsShapeAndColumns) {
  Dataset ds = Dataset::FromRows({{1.0, 2.0}}, {"alpha", "beta"});
  const std::string desc = DescribeDataset(ds);
  EXPECT_NE(desc.find("1 rows x 2 cols"), std::string::npos);
  EXPECT_NE(desc.find("alpha"), std::string::npos);
  EXPECT_NE(desc.find("beta"), std::string::npos);
}

TEST(DescribeDatasetTest, TruncatesWideDatasets) {
  Dataset ds(30);
  ds.AppendRow(std::vector<double>(30, 1.0));
  const std::string desc = DescribeDataset(ds, 4);
  EXPECT_NE(desc.find("26 more columns"), std::string::npos);
}

}  // namespace
}  // namespace hido
