#include "common/socket.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(SocketTest, ListenAssignsPortAndAcceptsConnections) {
  Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener.value().port, 0);

  Result<OwnedFd> client =
      ConnectTcp("127.0.0.1", listener.value().port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<OwnedFd> accepted = AcceptClient(listener.value().fd.get());
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  ASSERT_TRUE(accepted.value().valid());

  // Round trip a line each way.
  ASSERT_TRUE(WriteAll(client.value().get(), "hello\n").ok());
  std::string carry;
  Result<std::string> line = ReadLine(accepted.value().get(), &carry);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line.value(), "hello");

  ASSERT_TRUE(WriteAll(accepted.value().get(), "world\r\n").ok());
  carry.clear();
  line = ReadLine(client.value().get(), &carry);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line.value(), "world");  // \r stripped
}

TEST(SocketTest, NonBlockingAcceptReturnsInvalidWhenIdle) {
  Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(SetNonBlocking(listener.value().fd.get()).ok());
  Result<OwnedFd> accepted = AcceptClient(listener.value().fd.get());
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_FALSE(accepted.value().valid());
}

TEST(SocketTest, ReadAvailableDistinguishesEagainFromEof) {
  Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  Result<OwnedFd> client = ConnectTcp("127.0.0.1", listener.value().port);
  ASSERT_TRUE(client.ok());
  Result<OwnedFd> accepted = AcceptClient(listener.value().fd.get());
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(SetNonBlocking(accepted.value().get()).ok());

  std::string buffer;
  Result<ReadOutcome> outcome =
      ReadAvailable(accepted.value().get(), &buffer);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().bytes, -1);  // nothing pending yet
  EXPECT_TRUE(buffer.empty());

  ASSERT_TRUE(WriteAll(client.value().get(), "abc").ok());
  // The bytes may take a moment to land; poll until they do.
  for (int i = 0; i < 1000 && buffer.empty(); ++i) {
    outcome = ReadAvailable(accepted.value().get(), &buffer);
    ASSERT_TRUE(outcome.ok());
  }
  EXPECT_EQ(buffer, "abc");

  client.value().Reset();  // close -> EOF on the server side
  for (int i = 0; i < 1000; ++i) {
    outcome = ReadAvailable(accepted.value().get(), &buffer);
    ASSERT_TRUE(outcome.ok());
    if (outcome.value().bytes == 0) break;
  }
  EXPECT_EQ(outcome.value().bytes, 0);
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Bind a port, learn its number, close it, then connect to the corpse.
  int dead_port = 0;
  {
    Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener.value().port;
  }
  EXPECT_FALSE(ConnectTcp("127.0.0.1", dead_port).ok());
}

TEST(SocketTest, NonNumericHostRejected) {
  EXPECT_FALSE(ListenTcp("not-a-host", 0).ok());
}

TEST(SocketTest, OwnedFdMoveTransfersOwnership) {
  Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  OwnedFd a = std::move(listener.value().fd);
  EXPECT_TRUE(a.valid());
  OwnedFd b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
}

}  // namespace
}  // namespace hido
