#include "common/socket.h"

#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(SocketTest, ListenAssignsPortAndAcceptsConnections) {
  Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener.value().port, 0);

  Result<OwnedFd> client =
      ConnectTcp("127.0.0.1", listener.value().port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<OwnedFd> accepted = AcceptClient(listener.value().fd.get());
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  ASSERT_TRUE(accepted.value().valid());

  // Round trip a line each way.
  ASSERT_TRUE(WriteAll(client.value().get(), "hello\n").ok());
  std::string carry;
  Result<std::string> line = ReadLine(accepted.value().get(), &carry);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line.value(), "hello");

  ASSERT_TRUE(WriteAll(accepted.value().get(), "world\r\n").ok());
  carry.clear();
  line = ReadLine(client.value().get(), &carry);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line.value(), "world");  // \r stripped
}

TEST(SocketTest, NonBlockingAcceptReturnsInvalidWhenIdle) {
  Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(SetNonBlocking(listener.value().fd.get()).ok());
  Result<OwnedFd> accepted = AcceptClient(listener.value().fd.get());
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_FALSE(accepted.value().valid());
}

TEST(SocketTest, ReadAvailableDistinguishesEagainFromEof) {
  Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  Result<OwnedFd> client = ConnectTcp("127.0.0.1", listener.value().port);
  ASSERT_TRUE(client.ok());
  Result<OwnedFd> accepted = AcceptClient(listener.value().fd.get());
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(SetNonBlocking(accepted.value().get()).ok());

  std::string buffer;
  Result<ReadOutcome> outcome =
      ReadAvailable(accepted.value().get(), &buffer);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().bytes, -1);  // nothing pending yet
  EXPECT_TRUE(buffer.empty());

  ASSERT_TRUE(WriteAll(client.value().get(), "abc").ok());
  // The bytes may take a moment to land; poll until they do.
  for (int i = 0; i < 1000 && buffer.empty(); ++i) {
    outcome = ReadAvailable(accepted.value().get(), &buffer);
    ASSERT_TRUE(outcome.ok());
  }
  EXPECT_EQ(buffer, "abc");

  client.value().Reset();  // close -> EOF on the server side
  for (int i = 0; i < 1000; ++i) {
    outcome = ReadAvailable(accepted.value().get(), &buffer);
    ASSERT_TRUE(outcome.ok());
    if (outcome.value().bytes == 0) break;
  }
  EXPECT_EQ(outcome.value().bytes, 0);
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Bind a port, learn its number, close it, then connect to the corpse.
  int dead_port = 0;
  {
    Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener.value().port;
  }
  EXPECT_FALSE(ConnectTcp("127.0.0.1", dead_port).ok());
}

TEST(SocketTest, NonNumericHostRejected) {
  EXPECT_FALSE(ListenTcp("not-a-host", 0).ok());
}

TEST(SocketTest, OwnedFdMoveTransfersOwnership) {
  Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  OwnedFd a = std::move(listener.value().fd);
  EXPECT_TRUE(a.valid());
  OwnedFd b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
}

// A connected socket pair plus an installed injector, torn down on scope
// exit so no fault script leaks into the next test.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::move(listener.value());
    Result<OwnedFd> client = ConnectTcp("127.0.0.1", listener_.port);
    ASSERT_TRUE(client.ok());
    client_ = std::move(client.value());
    Result<OwnedFd> accepted = AcceptClient(listener_.fd.get());
    ASSERT_TRUE(accepted.ok());
    ASSERT_TRUE(accepted.value().valid());
    server_ = std::move(accepted.value());
  }

  void TearDown() override {
    FaultInjector::InstallOnThisThread(nullptr);
  }

  void Arm(const std::string& script) {
    Result<FaultInjector> injector = FaultInjector::Parse(script);
    ASSERT_TRUE(injector.ok()) << injector.status().ToString();
    injector_ = std::move(injector.value());
    FaultInjector::InstallOnThisThread(&injector_);
  }

  TcpListener listener_;
  OwnedFd client_;
  OwnedFd server_;
  FaultInjector injector_;
};

TEST_F(FaultInjectorTest, ParseRejectsMalformedScripts) {
  EXPECT_FALSE(FaultInjector::Parse("bogus").ok());
  EXPECT_FALSE(FaultInjector::Parse("read=EINTR").ok());
  EXPECT_FALSE(FaultInjector::Parse("read@0=EINTR").ok());      // 1-based
  EXPECT_FALSE(FaultInjector::Parse("read@5..2=EINTR").ok());   // descending
  EXPECT_FALSE(FaultInjector::Parse("read@1=EWHATEVER").ok());
  EXPECT_FALSE(FaultInjector::Parse("flush@1=EINTR").ok());     // unknown op
  EXPECT_FALSE(FaultInjector::Parse("write@1=short:x").ok());
  EXPECT_TRUE(FaultInjector::Parse("").ok());
  EXPECT_TRUE(
      FaultInjector::Parse("read@2=EINTR; write@3..=short:4;accept@1=EMFILE")
          .ok());
}

TEST_F(FaultInjectorTest, NothingInstalledMeansNoInterference) {
  ASSERT_TRUE(WriteAll(client_.get(), "plain\n").ok());
  std::string carry;
  Result<std::string> line = ReadLine(server_.get(), &carry);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line.value(), "plain");
}

TEST_F(FaultInjectorTest, EintrOnReadAndWriteIsRetriedTransparently) {
  Arm("write@1=EINTR;read@1=EINTR");
  ASSERT_TRUE(WriteAll(client_.get(), "retry\n").ok());
  std::string carry;
  Result<std::string> line = ReadLine(server_.get(), &carry);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line.value(), "retry");
  // Each op saw the injected attempt plus the successful retry.
  EXPECT_EQ(injector_.fired(), 2u);
  EXPECT_GE(injector_.calls(FaultInjector::Op::kWrite), 2u);
  EXPECT_GE(injector_.calls(FaultInjector::Op::kRead), 2u);
}

TEST_F(FaultInjectorTest, ShortWritesStillDeliverEveryByte) {
  // Clamp the first three sends to a single byte each: WriteAll must keep
  // going until the whole payload is out.
  Arm("write@1..3=short:1");
  ASSERT_TRUE(WriteAll(client_.get(), "abcdef\n").ok());
  EXPECT_EQ(injector_.calls(FaultInjector::Op::kWrite), 4u);
  std::string carry;
  Result<std::string> line = ReadLine(server_.get(), &carry);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line.value(), "abcdef");
}

TEST_F(FaultInjectorTest, WriteSomeSurfacesEagainAsPartialProgress) {
  // An unfaulted send would write everything in one call, so a short fault
  // forces a second call, which then hits the scripted EAGAIN.
  Arm("write@1=short:3;write@2=EAGAIN");
  Result<size_t> written = WriteSome(client_.get(), "abcdef");
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written.value(), 3u);  // the short write's bytes, then EAGAIN
  std::string buffer;
  for (int i = 0; i < 1000 && buffer.size() < 3; ++i) {
    ASSERT_TRUE(SetNonBlocking(server_.get()).ok());
    ASSERT_TRUE(ReadAvailable(server_.get(), &buffer).ok());
  }
  EXPECT_EQ(buffer, "abc");
}

TEST_F(FaultInjectorTest, HardWriteErrorReportedAsIoError) {
  Arm("write@1=ECONNRESET");
  const Status status = WriteAll(client_.get(), "doomed\n");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("write"), std::string::npos);
}

TEST_F(FaultInjectorTest, ReadAvailableDeliversBytesBeforeMidStreamError) {
  // 5000 bytes arrive; the second chunked read is scripted to die. The
  // first chunk's bytes must still be delivered, and the next call picks
  // up the rest: a mid-stream error never eats data already read.
  ASSERT_TRUE(SetNonBlocking(server_.get()).ok());
  const std::string payload(5000, 'z');
  ASSERT_TRUE(WriteAll(client_.get(), payload).ok());
  Result<bool> ready = WaitReadable(server_.get(), 5000);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(ready.value());
  Arm("read@2=ECONNRESET");
  std::string buffer;
  Result<ReadOutcome> first = ReadAvailable(server_.get(), &buffer);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().bytes, 4096);
  EXPECT_EQ(buffer.size(), 4096u);
  Result<ReadOutcome> second = ReadAvailable(server_.get(), &buffer);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(buffer, payload);
}

TEST_F(FaultInjectorTest, AcceptFaultsSurfaceOnceAndThenRecover) {
  Arm("accept@1=EMFILE");
  Result<OwnedFd> shed = AcceptClient(listener_.fd.get());
  EXPECT_FALSE(shed.ok());  // the scripted fd-pressure failure
  // A fresh client connects fine once the fault schedule has passed.
  Result<OwnedFd> client = ConnectTcp("127.0.0.1", listener_.port);
  ASSERT_TRUE(client.ok());
  Result<OwnedFd> accepted = AcceptClient(listener_.fd.get());
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_TRUE(accepted.value().valid());
}

TEST_F(FaultInjectorTest, AcceptEintrIsRetried) {
  Arm("accept@1=EINTR");
  Result<OwnedFd> client = ConnectTcp("127.0.0.1", listener_.port);
  ASSERT_TRUE(client.ok());
  Result<OwnedFd> accepted = AcceptClient(listener_.fd.get());
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_TRUE(accepted.value().valid());
  EXPECT_EQ(injector_.calls(FaultInjector::Op::kAccept), 2u);
}

TEST_F(FaultInjectorTest, InjectorIsThreadLocal) {
  Arm("read@1..=ECONNRESET");
  // Another thread using the same helpers sees no faults at all.
  Status other = Status::Ok();
  std::thread sibling([&] {
    if (!WriteAll(client_.get(), "sibling\n").ok()) {
      other = Status::IoError("write failed");
      return;
    }
    std::string carry;
    Result<std::string> line = ReadLine(server_.get(), &carry);
    if (!line.ok() || line.value() != "sibling") {
      other = Status::IoError("read failed");
    }
  });
  sibling.join();
  EXPECT_TRUE(other.ok()) << other.ToString();
  EXPECT_EQ(injector_.fired(), 0u);
}

TEST(WaitReadableTest, TimesOutThenSeesData) {
  Result<TcpListener> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  Result<OwnedFd> client = ConnectTcp("127.0.0.1", listener.value().port);
  ASSERT_TRUE(client.ok());
  Result<OwnedFd> accepted = AcceptClient(listener.value().fd.get());
  ASSERT_TRUE(accepted.ok());

  Result<bool> idle = WaitReadable(accepted.value().get(), 0);
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle.value());

  ASSERT_TRUE(WriteAll(client.value().get(), "x").ok());
  Result<bool> ready = WaitReadable(accepted.value().get(), 2000);
  ASSERT_TRUE(ready.ok());
  EXPECT_TRUE(ready.value());
}

}  // namespace
}  // namespace hido
