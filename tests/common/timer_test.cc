#include "common/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(StopWatchTest, ElapsedIsNonNegativeAndMonotone) {
  StopWatch watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
}

TEST(StopWatchTest, MeasuresSleep) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);  // generous ceiling for loaded CI machines
}

TEST(StopWatchTest, ResetRestartsTheClock) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 0.015);
}

TEST(StopWatchTest, MillisMatchesSeconds) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1e3, 5.0);
}

}  // namespace
}  // namespace hido
