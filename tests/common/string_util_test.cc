#include "common/string_util.h"

#include <gtest/gtest.h>

#include <limits>

namespace hido {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFieldsPreserved) {
  EXPECT_EQ(Split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(SplitTest, EmptyInputIsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\r\nabc\n"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("solid"), "solid");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("  -1e3 ").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").value(), 0.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("inf").ok());  // non-finite rejected
  EXPECT_FALSE(ParseDouble("nan").ok());
}

TEST(ParseDoubleTest, TrailingJunkRejected) {
  const Result<double> r = ParseDouble("1.5abc");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not a number"), std::string::npos)
      << r.status().ToString();
}

TEST(ParseDoubleTest, OverflowIsARangeErrorNotSaturation) {
  // strtod saturated these to +-HUGE_VAL with errno == ERANGE; the parse
  // must reject them with a distinct out-of-range message instead.
  for (const char* text : {"1e999", "-1e999", "1e99999"}) {
    const Result<double> r = ParseDouble(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_NE(r.status().message().find("out of range"), std::string::npos)
        << r.status().ToString();
  }
}

TEST(ParseDoubleTest, LocaleIndependentDecimalPoint) {
  // '.' must be the decimal point no matter what LC_NUMERIC says, and a
  // locale's ',' separator must never be accepted. (from_chars guarantees
  // the "C" locale; this pins the contract even if the host set another.)
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_FALSE(ParseDouble("1,5").ok());
}

TEST(ParseDoubleTest, ExplicitPlusSign) {
  EXPECT_DOUBLE_EQ(ParseDouble("+2.5").value(), 2.5);
  EXPECT_FALSE(ParseDouble("+").ok());
  EXPECT_FALSE(ParseDouble("+-1.5").ok());
  EXPECT_FALSE(ParseDouble("++1").ok());
}

TEST(ParseIntTest, ValidAndInvalid) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_EQ(ParseInt("+7").value(), 7);
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("4.5").ok());
  EXPECT_FALSE(ParseInt("x").ok());
  EXPECT_FALSE(ParseInt("+-7").ok());
}

TEST(ParseIntTest, OverflowIsARangeErrorNotSaturation) {
  EXPECT_EQ(ParseInt("9223372036854775807").value(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseInt("-9223372036854775808").value(),
            std::numeric_limits<int64_t>::min());
  // strtoll saturated these to LLONG_MAX/LLONG_MIN with ERANGE.
  for (const char* text :
       {"9223372036854775808", "-9223372036854775809", "1e999"}) {
    EXPECT_FALSE(ParseInt(text).ok()) << text;
  }
}

TEST(ParseUIntTest, ValidAndInvalid) {
  EXPECT_EQ(ParseUInt("42").value(), 42u);
  EXPECT_EQ(ParseUInt(" 7 ").value(), 7u);
  EXPECT_EQ(ParseUInt("+7").value(), 7u);
  EXPECT_EQ(ParseUInt("0").value(), 0u);
  EXPECT_FALSE(ParseUInt("").ok());
  EXPECT_FALSE(ParseUInt("-1").ok());
  EXPECT_FALSE(ParseUInt("4.5").ok());
  EXPECT_FALSE(ParseUInt("x").ok());
  EXPECT_FALSE(ParseUInt("+-7").ok());
}

TEST(ParseUIntTest, FullUint64RangeParses) {
  // The reason ParseUInt exists: RNG-derived seeds above INT64_MAX, which
  // ParseInt rejects as out of range.
  EXPECT_EQ(ParseUInt("18446744073709551615").value(),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(ParseUInt("9223372036854775808").value(),
            uint64_t{9223372036854775808u});
  EXPECT_FALSE(ParseInt("9223372036854775808").ok());
  EXPECT_FALSE(ParseUInt("18446744073709551616").ok());  // 2^64
}

TEST(IsMissingTokenTest, RecognizedSpellings) {
  EXPECT_TRUE(IsMissingToken(""));
  EXPECT_TRUE(IsMissingToken("?"));
  EXPECT_TRUE(IsMissingToken(" NA "));
  EXPECT_TRUE(IsMissingToken("NaN"));
  EXPECT_TRUE(IsMissingToken("null"));
  EXPECT_FALSE(IsMissingToken("0"));
  EXPECT_FALSE(IsMissingToken("n/a"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.0 / 3.0), "0.33");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_str(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_str.c_str()).size(), 500u);
}

}  // namespace
}  // namespace hido
