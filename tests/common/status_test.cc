#include "common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("y").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("z").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("w").message(), "w");
  EXPECT_FALSE(Status::OutOfRange("r").ok());
  EXPECT_FALSE(Status::FailedPrecondition("p").ok());
  EXPECT_FALSE(Status::ResourceExhausted("e").ok());
  EXPECT_FALSE(Status::DeadlineExceeded("d").ok());
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_FALSE(Status::Cancelled("c").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  const Status s = Status::ParseError("line 3");
  EXPECT_EQ(s.ToString(), "ParseError: line 3");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusCodeToStringTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, DeathOnAccessingErrorValue) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH(r.value(), "Result::value");
}

TEST(ResultTest, DeathOnOkStatusWithoutValue) {
  EXPECT_DEATH(Result<int>(Status::Ok()), "OK status");
}

Status FailOnNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chained(int x) {
  HIDO_RETURN_IF_ERROR(FailOnNegative(x));
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hido
