#include "common/bitset_kernels.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitset.h"
#include "common/rng.h"

namespace hido {
namespace {

TEST(BitsetKernelsTest, NamesRoundTrip) {
  for (KernelKind kind :
       {KernelKind::kScalar, KernelKind::kAvx2, KernelKind::kNeon}) {
    KernelKind parsed;
    ASSERT_TRUE(ParseKernelKind(KernelKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  KernelKind parsed;
  EXPECT_FALSE(ParseKernelKind("auto", &parsed));
  EXPECT_FALSE(ParseKernelKind("", &parsed));
  EXPECT_FALSE(ParseKernelKind("sse", &parsed));
}

TEST(BitsetKernelsTest, ScalarAlwaysAvailable) {
  const BitsetKernels* scalar = KernelTableFor(KernelKind::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->kind, KernelKind::kScalar);
  EXPECT_STREQ(scalar->name, "scalar");
  const std::vector<KernelKind> available = AvailableKernels();
  ASSERT_FALSE(available.empty());
  EXPECT_EQ(available.back(), KernelKind::kScalar);
  // Every advertised kernel resolves to a complete table.
  for (KernelKind kind : available) {
    const BitsetKernels* table = KernelTableFor(kind);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->kind, kind);
    EXPECT_NE(table->count, nullptr);
    EXPECT_NE(table->and_count, nullptr);
    EXPECT_NE(table->and_with, nullptr);
    EXPECT_NE(table->and_count_into, nullptr);
  }
  EXPECT_EQ(BestAvailableKernel(), available.front());
}

TEST(BitsetKernelsTest, ScopedOverrideForcesAndRestores) {
  const KernelKind ambient = ActiveKernelKind();
  for (KernelKind kind : AvailableKernels()) {
    ScopedKernelOverride forced(kind);
    EXPECT_EQ(ActiveKernelKind(), kind);
    EXPECT_EQ(ActiveKernels().kind, kind);
  }
  EXPECT_EQ(ActiveKernelKind(), ambient);
}

TEST(BitsetKernelsTest, OverridesNest) {
  ScopedKernelOverride outer(KernelKind::kScalar);
  {
    ScopedKernelOverride inner(BestAvailableKernel());
    EXPECT_EQ(ActiveKernelKind(), BestAvailableKernel());
  }
  EXPECT_EQ(ActiveKernelKind(), KernelKind::kScalar);
}

// Every kernel computes the same pure functions: compare each available
// kernel's raw word primitives against the scalar reference on random
// word arrays (including n = 0 and odd tails that miss the unroll width).
TEST(BitsetKernelsTest, KernelsAgreeWithScalarOnRandomWords) {
  const BitsetKernels& scalar = *KernelTableFor(KernelKind::kScalar);
  Rng rng(17);
  for (KernelKind kind : AvailableKernels()) {
    const BitsetKernels& kernels = *KernelTableFor(kind);
    for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 31u, 64u, 65u}) {
      std::vector<uint64_t> a(n), b(n);
      for (size_t i = 0; i < n; ++i) {
        a[i] = rng.Next64();
        b[i] = rng.Next64();
      }
      EXPECT_EQ(kernels.count(a.data(), n), scalar.count(a.data(), n))
          << KernelKindName(kind) << " count n=" << n;
      EXPECT_EQ(kernels.and_count(a.data(), b.data(), n),
                scalar.and_count(a.data(), b.data(), n))
          << KernelKindName(kind) << " and_count n=" << n;

      std::vector<uint64_t> kernel_dst = a;
      std::vector<uint64_t> scalar_dst = a;
      kernels.and_with(kernel_dst.data(), b.data(), n);
      scalar.and_with(scalar_dst.data(), b.data(), n);
      EXPECT_EQ(kernel_dst, scalar_dst)
          << KernelKindName(kind) << " and_with n=" << n;

      std::vector<uint64_t> fused_dst = a;
      const size_t fused = kernels.and_count_into(fused_dst.data(), b.data(), n);
      EXPECT_EQ(fused_dst, scalar_dst)
          << KernelKindName(kind) << " and_count_into words n=" << n;
      EXPECT_EQ(fused, scalar.count(scalar_dst.data(), n))
          << KernelKindName(kind) << " and_count_into count n=" << n;
    }
  }
}

// DynamicBitset boundary behaviour, pinned per kernel: sizes straddling
// the 64-bit word boundary exercise MaskTail, tail-word Count, AndCount
// over mismatched tail words, and AppendSetBits ordering.
class BitsetKernelBoundary
    : public ::testing::TestWithParam<std::tuple<KernelKind, size_t>> {
 protected:
  static bool KernelAvailable() {
    return KernelTableFor(std::get<0>(GetParam())) != nullptr;
  }
};

TEST_P(BitsetKernelBoundary, SetAllCountRespectsMaskTail) {
  if (!KernelAvailable()) GTEST_SKIP() << "kernel unavailable on this host";
  const ScopedKernelOverride forced(std::get<0>(GetParam()));
  const size_t size = std::get<1>(GetParam());
  DynamicBitset b(size);
  EXPECT_EQ(b.Count(), 0u);
  b.SetAll();
  EXPECT_EQ(b.Count(), size);  // MaskTail: no phantom bits past size
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST_P(BitsetKernelBoundary, AndCountWithMismatchedTailWords) {
  if (!KernelAvailable()) GTEST_SKIP() << "kernel unavailable on this host";
  const ScopedKernelOverride forced(std::get<0>(GetParam()));
  const size_t size = std::get<1>(GetParam());
  if (size == 0) {
    DynamicBitset a(0), b(0);
    EXPECT_EQ(a.AndCount(b), 0u);
    return;
  }
  // a: everything; b: only the last bit — the tail words disagree
  // everywhere except the final bit.
  DynamicBitset a(size), b(size);
  a.SetAll();
  b.Set(size - 1);
  EXPECT_EQ(a.AndCount(b), 1u);
  EXPECT_EQ(b.AndCount(a), 1u);
  // Odd-even split within the tail word.
  DynamicBitset evens(size), odds(size);
  for (size_t i = 0; i < size; i += 2) evens.Set(i);
  for (size_t i = 1; i < size; i += 2) odds.Set(i);
  EXPECT_EQ(evens.AndCount(odds), 0u);
  EXPECT_EQ(evens.AndCount(a), evens.Count());
  EXPECT_EQ(evens.Count() + odds.Count(), size);
}

TEST_P(BitsetKernelBoundary, FusedAndCountIntoMatchesTwoPass) {
  if (!KernelAvailable()) GTEST_SKIP() << "kernel unavailable on this host";
  const ScopedKernelOverride forced(std::get<0>(GetParam()));
  const size_t size = std::get<1>(GetParam());
  Rng rng(91 + size);
  DynamicBitset a(size), b(size);
  for (size_t i = 0; i < size; ++i) {
    if (rng.Bernoulli(0.5)) a.Set(i);
    if (rng.Bernoulli(0.3)) b.Set(i);
  }
  DynamicBitset two_pass = a;
  two_pass.AndWith(b);
  DynamicBitset fused = a;
  EXPECT_EQ(fused.AndCountInto(b), two_pass.Count());
  EXPECT_EQ(fused, two_pass);
}

TEST_P(BitsetKernelBoundary, AppendSetBitsAscending) {
  if (!KernelAvailable()) GTEST_SKIP() << "kernel unavailable on this host";
  const ScopedKernelOverride forced(std::get<0>(GetParam()));
  const size_t size = std::get<1>(GetParam());
  DynamicBitset b(size);
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < size; i += 7) {
    b.Set(i);
    expected.push_back(static_cast<uint32_t>(i));
  }
  if (size > 0 && (size - 1) % 7 != 0) {
    b.Set(size - 1);
    expected.push_back(static_cast<uint32_t>(size - 1));
  }
  std::vector<uint32_t> out;
  b.AppendSetBits(out);
  EXPECT_EQ(out, expected);
  EXPECT_EQ(b.Count(), expected.size());
}

INSTANTIATE_TEST_SUITE_P(
    KernelsTimesSizes, BitsetKernelBoundary,
    ::testing::Combine(::testing::Values(KernelKind::kScalar,
                                         KernelKind::kAvx2,
                                         KernelKind::kNeon),
                       ::testing::Values(0, 1, 63, 64, 65, 127, 128)),
    [](const ::testing::TestParamInfo<std::tuple<KernelKind, size_t>>& info) {
      return std::string(KernelKindName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hido
