#include "common/bitset.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hido {
namespace {

TEST(DynamicBitsetTest, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(DynamicBitsetTest, SetClearTest) {
  DynamicBitset b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(DynamicBitsetTest, SetAllRespectsSize) {
  for (size_t size : {1u, 63u, 64u, 65u, 128u, 130u}) {
    DynamicBitset b(size);
    b.SetAll();
    EXPECT_EQ(b.Count(), size) << "size " << size;
    b.ClearAll();
    EXPECT_EQ(b.Count(), 0u);
  }
}

TEST(DynamicBitsetTest, AndWith) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  for (size_t i = 0; i < 100; i += 2) a.Set(i);   // evens
  for (size_t i = 0; i < 100; i += 3) b.Set(i);   // multiples of 3
  a.AndWith(b);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Test(i), i % 6 == 0) << i;
  }
}

TEST(DynamicBitsetTest, AndCountMatchesAndWith) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t size = 1 + rng.UniformIndex(300);
    DynamicBitset a(size);
    DynamicBitset b(size);
    for (size_t i = 0; i < size; ++i) {
      if (rng.Bernoulli(0.4)) a.Set(i);
      if (rng.Bernoulli(0.4)) b.Set(i);
    }
    DynamicBitset anded = a;
    anded.AndWith(b);
    EXPECT_EQ(a.AndCount(b), anded.Count());
    EXPECT_EQ(b.AndCount(a), anded.Count());  // symmetric
  }
}

TEST(DynamicBitsetTest, ToIndicesRoundTrip) {
  DynamicBitset b(200);
  const std::vector<uint32_t> expected = {0, 5, 63, 64, 65, 128, 199};
  for (uint32_t i : expected) b.Set(i);
  EXPECT_EQ(b.ToIndices(), expected);
}

TEST(DynamicBitsetTest, EqualityAndCopy) {
  DynamicBitset a(50);
  a.Set(10);
  DynamicBitset b = a;
  EXPECT_EQ(a, b);
  b.Set(20);
  EXPECT_FALSE(a == b);
}

TEST(DynamicBitsetTest, EmptyBitset) {
  DynamicBitset b(0);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.Count(), 0u);
  b.SetAll();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.ToIndices().empty());
}

// Property sweep over sizes around word boundaries.
class BitsetBoundary : public ::testing::TestWithParam<size_t> {};

TEST_P(BitsetBoundary, LastBitWorks) {
  const size_t size = GetParam();
  DynamicBitset b(size);
  b.Set(size - 1);
  EXPECT_TRUE(b.Test(size - 1));
  EXPECT_EQ(b.Count(), 1u);
  ASSERT_EQ(b.ToIndices().size(), 1u);
  EXPECT_EQ(b.ToIndices()[0], size - 1);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BitsetBoundary,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129,
                                           1000));

}  // namespace
}  // namespace hido
