#include "common/logging.h"

#include <gtest/gtest.h>

namespace hido {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultLevelIsWarning) {
  // The library must not spam stderr below warnings by default.
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kWarning));
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kDebug));
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(static_cast<int>(GetLogLevel()),
            static_cast<int>(LogLevel::kError));
}

TEST_F(LoggingTest, SuppressedMessageProducesNoOutput) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  HIDO_LOG_INFO("should not appear %d", 42);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, EmittedMessageContainsLevelAndText) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  HIDO_LOG_WARNING("cube %d is sparse", 7);
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("cube 7 is sparse"), std::string::npos);
}

TEST_F(LoggingTest, MacroArgumentsNotEvaluatedWhenSuppressed) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 1;
  };
  HIDO_LOG_DEBUG("%d", expensive());
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace hido
