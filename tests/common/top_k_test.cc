#include "common/top_k.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hido {
namespace {

TEST(TopKTest, KeepsSmallest) {
  TopK<int> top(3);
  for (int v : {5, 1, 9, 3, 7, 2}) top.Offer(v);
  EXPECT_EQ(top.SortedCopy(), (std::vector<int>{1, 2, 3}));
}

TEST(TopKTest, UnderCapacityKeepsAll) {
  TopK<int> top(10);
  top.Offer(4);
  top.Offer(2);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_EQ(top.SortedCopy(), (std::vector<int>{2, 4}));
}

TEST(TopKTest, OfferReportsRetention) {
  TopK<int> top(2);
  EXPECT_TRUE(top.Offer(5));
  EXPECT_TRUE(top.Offer(3));
  EXPECT_FALSE(top.Offer(9));  // worse than both
  EXPECT_TRUE(top.Offer(1));   // displaces 5
  EXPECT_EQ(top.SortedCopy(), (std::vector<int>{1, 3}));
}

TEST(TopKTest, WouldAcceptMatchesOffer) {
  TopK<int> top(2);
  top.Offer(10);
  top.Offer(20);
  EXPECT_TRUE(top.WouldAccept(5));
  EXPECT_FALSE(top.WouldAccept(20));  // equal to worst: not strictly better
  EXPECT_FALSE(top.WouldAccept(25));
}

TEST(TopKTest, WorstIsHeapFront) {
  TopK<int> top(3);
  for (int v : {4, 8, 1}) top.Offer(v);
  EXPECT_EQ(top.Worst(), 8);
  top.Offer(2);
  EXPECT_EQ(top.Worst(), 4);
}

TEST(TopKTest, TakeSortedConsumes) {
  TopK<int> top(3);
  for (int v : {4, 8, 1}) top.Offer(v);
  EXPECT_EQ(top.TakeSorted(), (std::vector<int>{1, 4, 8}));
  EXPECT_TRUE(top.empty());
}

TEST(TopKTest, CustomComparatorKeepsLargest) {
  TopK<int, std::greater<int>> top(2);
  for (int v : {5, 1, 9, 3}) top.Offer(v);
  EXPECT_EQ(top.SortedCopy(), (std::vector<int>{9, 5}));
}

TEST(TopKTest, MatchesFullSortOnRandomData) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t capacity = 1 + rng.UniformIndex(20);
    std::vector<int> values;
    TopK<int> top(capacity);
    for (int i = 0; i < 500; ++i) {
      const int v = static_cast<int>(rng.UniformIndex(1000));
      values.push_back(v);
      top.Offer(v);
    }
    std::sort(values.begin(), values.end());
    values.resize(std::min(values.size(), capacity));
    EXPECT_EQ(top.SortedCopy(), values);
  }
}

}  // namespace
}  // namespace hido
