#include "common/top_k.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hido {
namespace {

TEST(TopKTest, KeepsSmallest) {
  TopK<int> top(3);
  for (int v : {5, 1, 9, 3, 7, 2}) top.Offer(v);
  EXPECT_EQ(top.SortedCopy(), (std::vector<int>{1, 2, 3}));
}

TEST(TopKTest, UnderCapacityKeepsAll) {
  TopK<int> top(10);
  top.Offer(4);
  top.Offer(2);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_EQ(top.SortedCopy(), (std::vector<int>{2, 4}));
}

TEST(TopKTest, OfferReportsRetention) {
  TopK<int> top(2);
  EXPECT_TRUE(top.Offer(5));
  EXPECT_TRUE(top.Offer(3));
  EXPECT_FALSE(top.Offer(9));  // worse than both
  EXPECT_TRUE(top.Offer(1));   // displaces 5
  EXPECT_EQ(top.SortedCopy(), (std::vector<int>{1, 3}));
}

TEST(TopKTest, WouldAcceptMatchesOffer) {
  TopK<int> top(2);
  top.Offer(10);
  top.Offer(20);
  EXPECT_TRUE(top.WouldAccept(5));
  EXPECT_FALSE(top.WouldAccept(20));  // equal to worst: not strictly better
  EXPECT_FALSE(top.WouldAccept(25));
}

TEST(TopKTest, WorstIsHeapFront) {
  TopK<int> top(3);
  for (int v : {4, 8, 1}) top.Offer(v);
  EXPECT_EQ(top.Worst(), 8);
  top.Offer(2);
  EXPECT_EQ(top.Worst(), 4);
}

TEST(TopKTest, TakeSortedConsumes) {
  TopK<int> top(3);
  for (int v : {4, 8, 1}) top.Offer(v);
  EXPECT_EQ(top.TakeSorted(), (std::vector<int>{1, 4, 8}));
  EXPECT_TRUE(top.empty());
}

TEST(TopKTest, CustomComparatorKeepsLargest) {
  TopK<int, std::greater<int>> top(2);
  for (int v : {5, 1, 9, 3}) top.Offer(v);
  EXPECT_EQ(top.SortedCopy(), (std::vector<int>{9, 5}));
}

// ------------------------------------------------- tie determinism --
//
// Callers that need deterministic results (BestSet's (sparsity, key) order,
// the ensemble's (score, row) ranking) feed TopK a *total* order: a
// comparator that breaks score ties by a unique index. These tests pin the
// contract that makes that sufficient — with a total order, the retained
// set and its sorted output are insertion-order invariant.

using ScoredItem = std::pair<double, size_t>;  // (score, unique index)

struct ScoreThenIndex {
  bool operator()(const ScoredItem& a, const ScoredItem& b) const {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  }
};

TEST(TopKTest, TotalOrderBreaksScoreTiesByIndex) {
  TopK<ScoredItem, ScoreThenIndex> top(3);
  // Four items tied on score: only the three lowest indices survive, and
  // the cut is by index, not by arrival order.
  for (const size_t index : {7u, 2u, 9u, 4u}) {
    top.Offer({1.0, index});
  }
  EXPECT_EQ(top.SortedCopy(),
            (std::vector<ScoredItem>{{1.0, 2}, {1.0, 4}, {1.0, 7}}));
  // A tied item above the cut is rejected; one below displaces the worst.
  EXPECT_FALSE(top.Offer({1.0, 8}));
  EXPECT_TRUE(top.Offer({1.0, 1}));
  EXPECT_EQ(top.SortedCopy(),
            (std::vector<ScoredItem>{{1.0, 1}, {1.0, 2}, {1.0, 4}}));
}

TEST(TopKTest, TiedResultsAreInsertionOrderInvariant) {
  std::vector<ScoredItem> items;
  for (size_t index = 0; index < 12; ++index) {
    items.push_back({static_cast<double>(index % 3), index});
  }
  std::vector<ScoredItem> baseline;
  std::vector<ScoredItem> permuted = items;
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    // Fisher-Yates with the repo Rng, so the trial set is deterministic.
    for (size_t i = permuted.size(); i > 1; --i) {
      std::swap(permuted[i - 1], permuted[rng.UniformIndex(i)]);
    }
    TopK<ScoredItem, ScoreThenIndex> top(5);
    for (const ScoredItem& item : permuted) top.Offer(item);
    const std::vector<ScoredItem> sorted = top.TakeSorted();
    if (trial == 0) {
      baseline = sorted;
      // The 5 best under (score, index): scores 0 (indices 0,3,6,9) then
      // the lowest-index score-1 item.
      EXPECT_EQ(baseline, (std::vector<ScoredItem>{
                              {0.0, 0}, {0.0, 3}, {0.0, 6}, {0.0, 9},
                              {1.0, 1}}));
    } else {
      EXPECT_EQ(sorted, baseline) << "trial " << trial;
    }
  }
}

TEST(TopKTest, MatchesFullSortOnRandomData) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t capacity = 1 + rng.UniformIndex(20);
    std::vector<int> values;
    TopK<int> top(capacity);
    for (int i = 0; i < 500; ++i) {
      const int v = static_cast<int>(rng.UniformIndex(1000));
      values.push_back(v);
      top.Offer(v);
    }
    std::sort(values.begin(), values.end());
    values.resize(std::min(values.size(), capacity));
    EXPECT_EQ(top.SortedCopy(), values);
  }
}

}  // namespace
}  // namespace hido
