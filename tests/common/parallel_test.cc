#include "common/parallel.h"

#include "common/mutex.h"

#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(ParallelForTest, VisitsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> visits(500);
  for (auto& v : visits) v.store(0);
  ParallelFor(500, 4, [&](size_t task, size_t) {
    visits[task].fetch_add(1);
  });
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::vector<size_t> order;
  ParallelFor(10, 1, [&](size_t task, size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);  // safe: inline execution
  });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, ZeroTasksIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, WorkerIndicesWithinRange) {
  Mutex mu;
  std::set<size_t> workers;
  ParallelFor(200, 3, [&](size_t, size_t worker) {
    MutexLock lock(mu);
    workers.insert(worker);
  });
  for (size_t w : workers) EXPECT_LT(w, 3u);
}

TEST(ParallelForTest, ThreadsClampedToTasks) {
  // 2 tasks, 16 threads: worker indices must stay below the task count.
  Mutex mu;
  std::set<size_t> workers;
  ParallelFor(2, 16, [&](size_t, size_t worker) {
    MutexLock lock(mu);
    workers.insert(worker);
  });
  for (size_t w : workers) EXPECT_LT(w, 2u);
}

TEST(ParallelForTest, SumAcrossThreadsMatches) {
  std::atomic<int64_t> sum{0};
  ParallelFor(1000, 8, [&](size_t task, size_t) {
    sum.fetch_add(static_cast<int64_t>(task));
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(HardwareThreadsTest, AtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

}  // namespace
}  // namespace hido
