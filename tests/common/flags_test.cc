#include "common/flags.h"

#include <gtest/gtest.h>

namespace hido {
namespace {

FlagParser MakeParser() {
  FlagParser parser("tool", "test tool");
  parser.AddString("name", "default", "a string");
  parser.AddInt("count", 5, "an int");
  parser.AddDouble("ratio", 0.5, "a double");
  parser.AddBool("verbose", false, "a bool");
  return parser;
}

TEST(FlagParserTest, DefaultsWithoutArgs) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({}).ok());
  EXPECT_EQ(parser.GetString("name"), "default");
  EXPECT_EQ(parser.GetInt("count"), 5);
  EXPECT_DOUBLE_EQ(parser.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(parser.GetBool("verbose"));
  EXPECT_FALSE(parser.WasSet("name"));
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(
      parser.Parse({"--name=x", "--count=9", "--ratio=0.25"}).ok());
  EXPECT_EQ(parser.GetString("name"), "x");
  EXPECT_EQ(parser.GetInt("count"), 9);
  EXPECT_DOUBLE_EQ(parser.GetDouble("ratio"), 0.25);
  EXPECT_TRUE(parser.WasSet("count"));
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"--name", "y", "--count", "-3"}).ok());
  EXPECT_EQ(parser.GetString("name"), "y");
  EXPECT_EQ(parser.GetInt("count"), -3);
}

TEST(FlagParserTest, BoolForms) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"--verbose"}).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));

  FlagParser parser2 = MakeParser();
  ASSERT_TRUE(parser2.Parse({"--verbose=false"}).ok());
  EXPECT_FALSE(parser2.GetBool("verbose"));

  FlagParser parser3 = MakeParser();
  ASSERT_TRUE(parser3.Parse({"--verbose", "false"}).ok());
  EXPECT_FALSE(parser3.GetBool("verbose"));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"detect", "--count=2", "file.csv"}).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"detect", "file.csv"}));
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser parser = MakeParser();
  const Status s = parser.Parse({"--nope=1"});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("nope"), std::string::npos);
}

TEST(FlagParserTest, BadIntFails) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(parser.Parse({"--count=abc"}).ok());
  EXPECT_FALSE(parser.Parse({"--count=1.5"}).ok());
}

TEST(FlagParserTest, BadBoolFails) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(parser.Parse({"--verbose=maybe"}).ok());
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(parser.Parse({"--name"}).ok());
}

TEST(FlagParserTest, RequiredFlagEnforced) {
  FlagParser parser("tool", "t");
  parser.AddString("input", "", "input file", /*required=*/true);
  EXPECT_FALSE(parser.Parse({}).ok());
  EXPECT_TRUE(parser.Parse({"--input=a.csv"}).ok());
}

TEST(FlagParserTest, HelpListsFlagsAndDefaults) {
  FlagParser parser = MakeParser();
  const std::string help = parser.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("a double"), std::string::npos);
  EXPECT_NE(help.find("0.5"), std::string::npos);
}

TEST(FlagParserTest, HelpMarksRequiredFlags) {
  FlagParser parser("tool", "t");
  parser.AddString("input", "", "input file", /*required=*/true);
  parser.AddInt("m", 20, "count");
  const std::string help = parser.Help();
  EXPECT_NE(help.find("required"), std::string::npos);
}

TEST(FlagParserTest, ReparseOverwrites) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"--count=7"}).ok());
  ASSERT_TRUE(parser.Parse({"--count=9", "pos"}).ok());
  EXPECT_EQ(parser.GetInt("count"), 9);
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"pos"}));
}

TEST(FlagParserTest, DoubleDashAloneIsPositional) {
  // "--" (length 2) does not start a flag body and passes through.
  FlagParser parser = MakeParser();
  ASSERT_TRUE(parser.Parse({"--"}).ok());
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"--"}));
}

TEST(FlagParserDeathTest, ProgrammerErrors) {
  FlagParser parser = MakeParser();
  EXPECT_DEATH(parser.AddInt("count", 1, "dup"), "duplicate");
  HIDO_UNUSED(parser.Parse({}));
  EXPECT_DEATH(parser.GetInt("name"), "wrong type");
  EXPECT_DEATH(parser.GetString("ghost"), "undeclared");
}

}  // namespace
}  // namespace hido
