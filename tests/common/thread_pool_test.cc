#include "common/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace hido {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  const size_t kTasks = 10000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kTasks, 4,
                   [&](size_t task, size_t) { hits[task].fetch_add(1); });
  for (size_t task = 0; task < kTasks; ++task) {
    EXPECT_EQ(hits[task].load(), 1) << "task " << task;
  }
}

TEST(ThreadPoolTest, WorkerIndicesAreWithinEffectiveParallelism) {
  ThreadPool pool(3);
  // Effective parallelism = min(max_parallelism=2, tasks, workers+1) = 2.
  std::atomic<size_t> max_worker{0};
  pool.ParallelFor(1000, 2, [&](size_t, size_t worker) {
    size_t seen = max_worker.load();
    while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
    }
  });
  EXPECT_LT(max_worker.load(), 2u);
}

TEST(ThreadPoolTest, ReusedAcrossManyCalls) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  for (int call = 0; call < 200; ++call) {
    pool.ParallelFor(50, 3, [&](size_t, size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u * 50u);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInlineInOrder) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::vector<size_t> order;
  pool.ParallelFor(8, 4, [&](size_t task, size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);
  });
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // A task running on the pool issues its own ParallelFor on the same pool.
  // The caller-participation discipline guarantees progress even when every
  // background worker is busy with outer tasks.
  ThreadPool pool(2);
  const size_t kOuter = 8;
  const size_t kInner = 64;
  std::atomic<size_t> total{0};
  pool.ParallelFor(kOuter, 3, [&](size_t, size_t) {
    pool.ParallelFor(kInner, 3,
                     [&](size_t, size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, UnevenTaskCostsAllComplete) {
  ThreadPool pool(3);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, 4, [&](size_t task, size_t) {
    // Task 0 is much heavier than the rest: dynamic claiming must let the
    // other participants drain the remaining 99.
    size_t spins = task == 0 ? 200000 : 10;
    volatile size_t sink = 0;
    for (size_t i = 0; i < spins; ++i) sink = sink + i;
    sum.fetch_add(task);
  });
  EXPECT_EQ(sum.load(), 99u * 100u / 2u);
}

TEST(ThreadPoolTest, SharedPoolIsASingletonWithAWorker) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  // Guaranteed at least one background worker even on a 1-core host, so
  // concurrency is genuinely exercised everywhere.
  EXPECT_GE(ThreadPool::Shared().num_workers(), 1u);
}

TEST(ThreadPoolTest, FreeParallelForRunsOnSharedPool) {
  // The free function keeps its historical signature but is pool-backed.
  std::atomic<size_t> total{0};
  ParallelFor(100, HardwareThreads() + 1,
              [&](size_t task, size_t) { total.fetch_add(task); });
  EXPECT_EQ(total.load(), 99u * 100u / 2u);
}

}  // namespace
}  // namespace hido
