#include "common/run_control.h"

#include <csignal>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"

namespace hido {
namespace {

TEST(StopCauseTest, NamesAreStable) {
  EXPECT_EQ(std::string(StopCauseToString(StopCause::kNone)), "none");
  EXPECT_EQ(std::string(StopCauseToString(StopCause::kDeadline)), "deadline");
  EXPECT_EQ(std::string(StopCauseToString(StopCause::kCancelled)),
            "cancelled");
  EXPECT_EQ(std::string(StopCauseToString(StopCause::kFailpoint)),
            "failpoint");
}

TEST(FakeClockTest, AdvanceAndSet) {
  FakeClock clock(10.0);
  EXPECT_EQ(clock.NowSeconds(), 10.0);
  clock.Advance(2.5);
  EXPECT_EQ(clock.NowSeconds(), 12.5);
  clock.Set(100.0);
  EXPECT_EQ(clock.NowSeconds(), 100.0);
}

TEST(FakeClockTest, AutoStepAdvancesPerRead) {
  FakeClock clock(0.0, 1.0);
  EXPECT_EQ(clock.NowSeconds(), 0.0);
  EXPECT_EQ(clock.NowSeconds(), 1.0);
  EXPECT_EQ(clock.NowSeconds(), 2.0);
}

TEST(RealClockTest, IsMonotone) {
  const double a = Clock::Real().NowSeconds();
  const double b = Clock::Real().NowSeconds();
  EXPECT_GE(b, a);
}

TEST(StopTokenTest, StartsClean) {
  StopToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.cause(), StopCause::kNone);
}

TEST(StopTokenTest, CancelIsStickyAndFirstCauseWins) {
  StopToken token;
  token.RequestCancel(StopCause::kCancelled);
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(token.stop_requested());
  token.RequestCancel(StopCause::kDeadline);  // loses: cause already set
  EXPECT_EQ(token.cause(), StopCause::kCancelled);
  EXPECT_TRUE(token.ShouldStop());
}

TEST(StopTokenTest, DeadlineExpiresOnFakeClockWithoutSleeping) {
  FakeClock clock(0.0);
  StopToken token(&clock);
  token.SetDeadline(5.0);
  EXPECT_FALSE(token.ShouldStop());
  clock.Advance(4.999);
  EXPECT_FALSE(token.ShouldStop());
  clock.Advance(0.001);
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.cause(), StopCause::kDeadline);
}

TEST(StopTokenTest, NonPositiveDeadlineClears) {
  FakeClock clock(0.0);
  StopToken token(&clock);
  token.SetDeadline(1.0);
  token.SetDeadline(0.0);
  clock.Advance(1000.0);
  EXPECT_FALSE(token.ShouldStop());
}

TEST(StopTokenTest, FailpointFiresAtExactPollCount) {
  StopToken token;
  token.ArmFailpoint(3);
  EXPECT_FALSE(token.ShouldStop());  // poll 1
  EXPECT_FALSE(token.ShouldStop());  // poll 2
  EXPECT_TRUE(token.ShouldStop());   // poll 3 fires
  EXPECT_EQ(token.cause(), StopCause::kFailpoint);
  EXPECT_TRUE(token.ShouldStop());   // sticky
}

TEST(StopTokenTest, PollCountObservable) {
  StopToken token;
  EXPECT_EQ(token.polls(), 0u);
  token.ShouldStop();
  token.ShouldStop();
  EXPECT_EQ(token.polls(), 2u);
}

TEST(StopPollerTest, NoSourcesNeverStops) {
  StopPoller poller(nullptr, nullptr, 0.0);
  EXPECT_FALSE(poller.ShouldStop());
  EXPECT_FALSE(poller.stopped());
  const RunStatus status = poller.status();
  EXPECT_TRUE(status.completed);
  EXPECT_EQ(status.stop_cause, StopCause::kNone);
}

TEST(StopPollerTest, LocalBudgetExpiresOnInjectedClock) {
  FakeClock clock(0.0, 1.0);  // +1s per read
  StopPoller poller(nullptr, &clock, 2.5);
  // SetDeadline reads once (t=0 -> deadline 2.5); polls read t=1, 2, 3.
  EXPECT_FALSE(poller.ShouldStop());
  EXPECT_FALSE(poller.ShouldStop());
  EXPECT_TRUE(poller.ShouldStop());
  const RunStatus status = poller.status();
  EXPECT_FALSE(status.completed);
  EXPECT_EQ(status.stop_cause, StopCause::kDeadline);
}

TEST(StopPollerTest, ExternalCauseWinsOverLocal) {
  FakeClock clock(0.0, 10.0);
  StopToken external(&clock);
  external.RequestCancel(StopCause::kCancelled);
  StopPoller poller(&external, &clock, 0.001);  // local would also expire
  EXPECT_TRUE(poller.ShouldStop());
  EXPECT_EQ(poller.cause(), StopCause::kCancelled);
}

TEST(StopPollerTest, StickyAfterFirstStop) {
  StopToken external;
  StopPoller poller(&external, nullptr, 0.0);
  external.RequestCancel();
  EXPECT_TRUE(poller.ShouldStop());
  EXPECT_TRUE(poller.stopped());
  EXPECT_TRUE(poller.ShouldStop());
}

TEST(SigintCancelTest, RaiseCancelsInstalledToken) {
  StopToken token;
  InstallSigintCancel(&token);
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.cause(), StopCause::kCancelled);
  InstallSigintCancel(nullptr);
  // Detached: a further SIGINT must be harmless and touch no token.
  StopToken other;
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_FALSE(other.stop_requested());
}

TEST(StopStatusTest, MapsCauseToStatusCode) {
  // Deadline stops surface as kDeadlineExceeded; everything else (cancel,
  // failpoint) is kCancelled. The message names the aborted operation.
  StopToken deadline;
  deadline.RequestCancel(StopCause::kDeadline);
  const Status d = StopStatus(deadline, "grid build");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(d.message().find("grid build"), std::string::npos);

  StopToken cancelled;
  cancelled.RequestCancel();
  EXPECT_EQ(StopStatus(cancelled, "csv read").code(),
            StatusCode::kCancelled);

  StopToken failpoint;
  failpoint.ArmFailpoint(1);
  EXPECT_TRUE(failpoint.ShouldStop());
  EXPECT_EQ(StopStatus(failpoint, "csv read").code(),
            StatusCode::kCancelled);
}

}  // namespace
}  // namespace hido
