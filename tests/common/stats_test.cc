#include "common/stats.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hido {
namespace {

TEST(RunningMomentsTest, EmptyAccumulator) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.stddev(), 0.0);
}

TEST(RunningMomentsTest, SingleValue) {
  RunningMoments m;
  m.Add(42.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_EQ(m.mean(), 42.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.min(), 42.0);
  EXPECT_EQ(m.max(), 42.0);
}

TEST(RunningMomentsTest, KnownSequence) {
  RunningMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  // Sample variance of the classic example: 32/7.
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(m.min(), 2.0);
  EXPECT_EQ(m.max(), 9.0);
}

TEST(RunningMomentsTest, StableUnderLargeOffset) {
  // Welford should not catastrophically cancel with a large common offset.
  RunningMoments m;
  const double offset = 1e9;
  for (double v : {1.0, 2.0, 3.0}) m.Add(offset + v);
  EXPECT_NEAR(m.variance(), 1.0, 1e-6);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-3.0), 0.0013498980316301, 1e-10);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalCdfTest, Monotone) {
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.1) {
    const double p = NormalCdf(x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(NormalPdfTest, PeakAndSymmetry) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(NormalPdf(1.5), NormalPdf(-1.5), 1e-15);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double x = NormalQuantile(p);
    EXPECT_NEAR(NormalCdf(x), p, 1e-9) << "p = " << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.0013498980316301), -3.0, 1e-7);
}

TEST(NormalQuantileTest, ExtremeTailsAreFiniteNotNaN) {
  // Regression: the Halley refinement computed exp(0.5*x*x), which
  // overflows to inf for |x| ≳ 38; with the residual NormalCdf(x) - p
  // underflowing to 0 the update became 0 * inf = NaN.
  const double lo = NormalQuantile(1e-300);
  EXPECT_FALSE(std::isnan(lo));
  EXPECT_TRUE(std::isfinite(lo));
  // z for p = 1e-300 is about -37.0471; Acklam alone is ~1e-9 relative.
  EXPECT_NEAR(lo, -37.0471, 1e-2);

  const double hi = NormalQuantile(1.0 - 1e-16);
  EXPECT_FALSE(std::isnan(hi));
  EXPECT_TRUE(std::isfinite(hi));
  EXPECT_NEAR(hi, 8.2095, 1e-2);

  // Denormal and near-1 extremes stay finite and ordered.
  const double denormal = NormalQuantile(5e-324);
  EXPECT_TRUE(std::isfinite(denormal));
  EXPECT_LT(denormal, lo);
  const double top = NormalQuantile(std::nextafter(1.0, 0.0));
  EXPECT_TRUE(std::isfinite(top));
  EXPECT_GT(top, 0.0);
}

TEST(NormalQuantileTest, MonotoneIntoTheTails) {
  double prev = -std::numeric_limits<double>::infinity();
  for (double p = 1e-300; p < 0.5; p *= 1e10) {
    const double x = NormalQuantile(p);
    EXPECT_TRUE(std::isfinite(x)) << "p = " << p;
    EXPECT_GT(x, prev) << "p = " << p;
    prev = x;
  }
}

TEST(BinomialMeanStddevTest, MatchesFormula) {
  const BinomialMoments m = BinomialMeanStddev(100.0, 0.25);
  EXPECT_DOUBLE_EQ(m.mean, 25.0);
  EXPECT_DOUBLE_EQ(m.stddev, std::sqrt(100.0 * 0.25 * 0.75));
}

TEST(BinomialMeanStddevTest, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(BinomialMeanStddev(50.0, 0.0).stddev, 0.0);
  EXPECT_DOUBLE_EQ(BinomialMeanStddev(50.0, 1.0).stddev, 0.0);
  EXPECT_DOUBLE_EQ(BinomialMeanStddev(50.0, 1.0).mean, 50.0);
}

TEST(LogGammaTest, KnownValues) {
  // Gamma(1) = 1, Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  // Factorial consistency up the range.
  EXPECT_NEAR(LogGamma(21.0), std::lgamma(21.0), 1e-8);
  EXPECT_NEAR(LogGamma(171.5), std::lgamma(171.5), 1e-6);
}

TEST(LogBinomialPmfTest, MatchesDirectComputation) {
  // Binomial(10, 0.5): P[k=5] = 252/1024.
  EXPECT_NEAR(std::exp(LogBinomialPmf(10, 0.5, 5)), 252.0 / 1024.0, 1e-12);
  // P[k=0] = (1-p)^n.
  EXPECT_NEAR(std::exp(LogBinomialPmf(20, 0.3, 0)), std::pow(0.7, 20),
              1e-12);
}

TEST(BinomialLowerTailTest, SmallExactValues) {
  // Binomial(3, 0.5): P[<=1] = (1 + 3)/8.
  EXPECT_NEAR(BinomialLowerTail(3, 0.5, 1), 0.5, 1e-12);
  // Full range sums to 1.
  EXPECT_NEAR(BinomialLowerTail(3, 0.5, 3), 1.0, 1e-12);
  // Degenerate probabilities.
  EXPECT_DOUBLE_EQ(BinomialLowerTail(5, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialLowerTail(5, 1.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(BinomialLowerTail(5, 1.0, 5), 1.0);
}

TEST(BinomialLowerTailTest, MonotoneInK) {
  double prev = 0.0;
  for (uint64_t k = 0; k <= 40; ++k) {
    const double tail = BinomialLowerTail(40, 0.3, k);
    EXPECT_GE(tail, prev - 1e-15);
    prev = tail;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(BinomialLowerTailTest, ConvergesToNormalApproximation) {
  // For large n*p the exact tail approaches Phi((k + .5 - np)/sd).
  const uint64_t n = 100000;
  const double p = 0.01;  // np = 1000
  const uint64_t k = 950;
  const BinomialMoments m = BinomialMeanStddev(static_cast<double>(n), p);
  const double normal =
      NormalCdf((static_cast<double>(k) + 0.5 - m.mean) / m.stddev);
  EXPECT_NEAR(BinomialLowerTail(n, p, k), normal, 5e-3);
}

TEST(BinomialLowerTailTest, UnderflowFallbackIsFinite) {
  // np so large that pmf(0) underflows: the continuity-corrected normal
  // branch must keep the result sane.
  const double tail = BinomialLowerTail(1u << 20, 0.5, (1u << 19));
  EXPECT_GT(tail, 0.49);
  EXPECT_LT(tail, 0.52);
}

TEST(BinomialLowerTailTest, SparseCubeRegimeBeatsNormalApprox) {
  // The sparsity use case: N=1000 points, cell probability 1/25, a cube
  // holding 1 point. Exact tail P[X<=1] = 27.4e-18... compute directly:
  const double exact = BinomialLowerTail(1000, 0.04, 1);
  const double direct = std::pow(0.96, 1000) +
                        1000.0 * 0.04 * std::pow(0.96, 999);
  EXPECT_NEAR(exact, direct, direct * 1e-9);
  // The normal approximation is off by orders of magnitude here.
  const BinomialMoments m = BinomialMeanStddev(1000.0, 0.04);
  const double normal = NormalCdf((1.0 - m.mean) / m.stddev);
  EXPECT_GT(normal / exact, 100.0);
}

TEST(QuantileSortedTest, SingleElement) {
  EXPECT_EQ(QuantileSorted({5.0}, 0.0), 5.0);
  EXPECT_EQ(QuantileSorted({5.0}, 1.0), 5.0);
}

TEST(QuantileSortedTest, EndpointsAndMedian) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(QuantileSorted(v, 0.0), 1.0);
  EXPECT_EQ(QuantileSorted(v, 1.0), 4.0);
  EXPECT_NEAR(QuantileSorted(v, 0.5), 2.5, 1e-12);
}

TEST(QuantileSortedTest, LinearInterpolation) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_NEAR(QuantileSorted(v, 0.25), 2.5, 1e-12);
  EXPECT_NEAR(QuantileSorted(v, 0.75), 7.5, 1e-12);
}

TEST(MeanStddevTest, BasicVectors) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(SampleStddev({1.0}), 0.0);
  EXPECT_NEAR(SampleStddev({1.0, 2.0, 3.0}), 1.0, 1e-12);
}

TEST(PearsonCorrelationTest, PerfectAndZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y_pos = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> y_neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, y_neg), -1.0, 1e-12);
  EXPECT_EQ(PearsonCorrelation(x, {1.0, 1.0, 1.0, 1.0}), 0.0);
  EXPECT_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(PearsonCorrelationTest, RecoverCorrelationOfGeneratedData) {
  Rng rng(77);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    const double a = rng.Normal();
    x.push_back(a);
    y.push_back(0.8 * a + 0.6 * rng.Normal());  // corr = 0.8
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.8, 0.02);
}

// Property sweep: quantile at i/n of 0..n-1 interpolates exactly.
class QuantileProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuantileProperty, MatchesClosedForm) {
  const int n = GetParam();
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_NEAR(QuantileSorted(v, q), q * (n - 1), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuantileProperty,
                         ::testing::Values(2, 3, 10, 101));

}  // namespace
}  // namespace hido
