#include "common/file_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace hido {
namespace {

using internal::ArmWriteFailpointForTest;
using internal::WriteFailStep;

class FileUtilTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/file_util_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    tmp_ = path_ + ".tmp";
    std::remove(path_.c_str());
    std::remove(tmp_.c_str());
  }

  void TearDown() override {
    ArmWriteFailpointForTest(WriteFailStep::kNone);
    std::remove(path_.c_str());
    std::remove(tmp_.c_str());
  }

  std::string path_;
  std::string tmp_;
};

TEST_F(FileUtilTest, RoundTrip) {
  ASSERT_TRUE(WriteFileAtomic(path_, "hello\nworld\n").ok());
  const Result<std::string> read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "hello\nworld\n");
  EXPECT_FALSE(FileExists(tmp_)) << "temporary left after a clean write";
}

TEST_F(FileUtilTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadFileToString(path_ + ".does-not-exist").ok());
}

TEST_F(FileUtilTest, OpenFailureToBadDirectory) {
  const std::string bad = path_ + ".no-such-dir/file";
  EXPECT_FALSE(WriteFileAtomic(bad, "x").ok());
  EXPECT_FALSE(FileExists(bad + ".tmp"));
}

// Each injected failure must (a) report the error, (b) leave the previous
// content at `path` untouched, and (c) leave no stale `path` + ".tmp".
TEST_F(FileUtilTest, FailpointsLeaveNoStaleTmpAndPreserveOldContent) {
  ASSERT_TRUE(WriteFileAtomic(path_, "old content").ok());
  for (const WriteFailStep step :
       {WriteFailStep::kOpen, WriteFailStep::kWrite,
        WriteFailStep::kRename}) {
    ArmWriteFailpointForTest(step);
    const Status written = WriteFileAtomic(path_, "new content");
    EXPECT_FALSE(written.ok()) << static_cast<int>(step);
    EXPECT_FALSE(FileExists(tmp_))
        << "stale .tmp after failure step " << static_cast<int>(step);
    const Result<std::string> read = ReadFileToString(path_);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), "old content")
        << "target clobbered by failed write, step "
        << static_cast<int>(step);
  }
}

TEST_F(FileUtilTest, FailpointIsOneShot) {
  ArmWriteFailpointForTest(WriteFailStep::kWrite);
  EXPECT_FALSE(WriteFileAtomic(path_, "first").ok());
  ASSERT_TRUE(WriteFileAtomic(path_, "second").ok());
  EXPECT_EQ(ReadFileToString(path_).value(), "second");
}

TEST_F(FileUtilTest, FirstWriteFailureLeavesNoTargetFile) {
  ArmWriteFailpointForTest(WriteFailStep::kRename);
  EXPECT_FALSE(WriteFileAtomic(path_, "never lands").ok());
  EXPECT_FALSE(FileExists(path_));
  EXPECT_FALSE(FileExists(tmp_));
}

}  // namespace
}  // namespace hido
