#include "common/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.Next64() == b.Next64()) ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64BoundOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rng.UniformU64(1), 0u);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatchStandardNormal) {
  Rng rng(19);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinctSortedInRange) {
  Rng rng(41);
  for (size_t n : {5u, 20u, 100u}) {
    for (size_t k : {0u, 1u, 3u, 5u}) {
      if (k > n) continue;
      const std::vector<size_t> sample = rng.SampleWithoutReplacement(n, k);
      ASSERT_EQ(sample.size(), k);
      EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
      const std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t s : sample) EXPECT_LT(s, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(43);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementIsUnbiased) {
  // Every index should be picked roughly equally often.
  Rng rng(47);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t idx : rng.SampleWithoutReplacement(10, 3)) {
      counts[idx] += 1;
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(RngTest, WeightedIndexZeroWeightNeverPicked) {
  Rng rng(53);
  const std::vector<double> weights = {1.0, 0.0, 2.0};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(59);
  const std::vector<double> weights = {1.0, 3.0};
  int first = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    first += rng.WeightedIndex(weights) == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(first) / n, 0.25, 0.01);
}

TEST(RngTest, ForStreamIsDeterministicPerStream) {
  Rng a = Rng::ForStream(42, 3);
  Rng b = Rng::ForStream(42, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, ForStreamsDivergeAcrossStreamsAndSeeds) {
  // Stream derivation goes through SplitMix64, so even adjacent stream ids
  // (and stream ids equal to other seeds) give unrelated sequences.
  Rng s0 = Rng::ForStream(42, 0);
  Rng s1 = Rng::ForStream(42, 1);
  Rng other_seed = Rng::ForStream(43, 0);
  int equal01 = 0;
  int equal0s = 0;
  for (int i = 0; i < 64; ++i) {
    const uint64_t v0 = s0.Next64();
    equal01 += (v0 == s1.Next64()) ? 1 : 0;
    equal0s += (v0 == other_seed.Next64()) ? 1 : 0;
  }
  EXPECT_LT(equal01, 4);
  EXPECT_LT(equal0s, 4);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.Split();
  // The child stream should not replay the parent stream.
  Rng parent_replay(61);
  parent_replay.Next64();  // consumed by Split
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (child.Next64() == parent_replay.Next64()) ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

// Property sweep: Lemire rejection keeps small bounds unbiased.
class RngBoundBias : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundBias, UniformAcrossResidues) {
  const uint64_t bound = GetParam();
  Rng rng(1000 + bound);
  std::vector<int> counts(bound, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    counts[rng.UniformU64(bound)] += 1;
  }
  const double expected = static_cast<double>(n) / static_cast<double>(bound);
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v] / expected, 1.0, 0.15)
        << "bound " << bound << " value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, RngBoundBias,
                         ::testing::Values(2, 3, 5, 7, 10, 16));

}  // namespace
}  // namespace hido
