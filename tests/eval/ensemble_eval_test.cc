// Pins the configuration EXPERIMENTS.md documents for the ensemble claim:
// at a matched per-search budget, an ensemble of decorrelated members
// recovers at least as many planted outliers as one single GA run — and
// the comparison is deterministic, so the pinned numbers are reproducible
// from the CLI recipe.

#include "eval/ensemble_eval.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace hido {
namespace eval {
namespace {

EnsembleEvalParams PinnedParams() {
  EnsembleEvalParams params;
  params.data.num_points = 600;
  params.data.num_dims = 24;
  params.data.num_groups = 4;
  params.data.num_outliers = 12;
  params.data.seed = 11;

  // One deliberately small search: a single GA restart with a short
  // generation budget, the regime where restart diversity is known to
  // matter (README's restart ablation). The ensemble runs E=4 of exactly
  // these searches with decorrelated seeds and max-combines them. phi
  // matches the generator's modes-per-group and target_dim its off-mode
  // subspace size, so the planted cells are findable by construction.
  params.detector.phi = 5;
  params.detector.target_dim = 2;
  params.detector.num_projections = 10;
  params.detector.evolution.population_size = 30;
  params.detector.evolution.max_generations = 12;
  params.detector.evolution.stagnation_generations = 0;
  params.detector.evolution.restarts = 1;
  params.detector.seed = 7;
  params.detector.cache_mode = CubeCacheMode::kShared;

  // Max-combine: members with decorrelated seeds *specialize* (each finds
  // a different subset of the planted cells), and max is the union-taking
  // aggregate — a row is as outlying as its most alarmed member. The
  // consensus mean would average a single-member find down below rows many
  // members weakly agree on.
  params.ensemble.num_members = 4;
  params.ensemble.combiner = ensemble::CombinerKind::kMax;
  return params;
}

TEST(EnsembleEvalTest, EnsembleRecallAtLeastSingleOnPinnedConfig) {
  const EnsembleEvalOutcome outcome =
      CompareEnsembleToSingle(PinnedParams());
  std::printf("single:   recall %.3f precision %.3f flagged %zu\n",
              outcome.single_run.recall, outcome.single_run.precision,
              outcome.single_run.flagged);
  std::printf("ensemble: recall %.3f precision %.3f flagged %zu\n",
              outcome.ensemble.recall, outcome.ensemble.precision,
              outcome.ensemble.flagged);
  EXPECT_GE(outcome.ensemble.recall, outcome.single_run.recall);
  EXPECT_GT(outcome.ensemble.recall, 0.0);
  EXPECT_LE(outcome.ensemble.recall, 1.0);
  EXPECT_GT(outcome.ensemble.flagged, 0u);
}

TEST(EnsembleEvalTest, ComparisonIsDeterministic) {
  const EnsembleEvalOutcome first = CompareEnsembleToSingle(PinnedParams());
  const EnsembleEvalOutcome second =
      CompareEnsembleToSingle(PinnedParams());
  EXPECT_EQ(first.single_run.recall, second.single_run.recall);
  EXPECT_EQ(first.single_run.precision, second.single_run.precision);
  EXPECT_EQ(first.ensemble.recall, second.ensemble.recall);
  EXPECT_EQ(first.ensemble.precision, second.ensemble.precision);
  EXPECT_EQ(first.ensemble.flagged, second.ensemble.flagged);
}

}  // namespace
}  // namespace eval
}  // namespace hido
