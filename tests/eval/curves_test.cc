#include "eval/curves.h"

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(TopNCurveTest, BasicPrecisionRecall) {
  // Ranking: + - + - ; positives {10, 30}.
  const std::vector<size_t> ranking = {10, 20, 30, 40};
  const std::vector<size_t> positives = {10, 30};
  const std::vector<CurvePoint> curve =
      TopNCurve(ranking, positives, {1, 2, 3, 4});
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[2].precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(curve[2].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve[3].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[3].recall, 1.0);
}

TEST(TopNCurveTest, BudgetsClampToRankingLength) {
  const std::vector<CurvePoint> curve =
      TopNCurve({1, 2}, {2}, {10});
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].n, 2u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
}

TEST(TopNCurveTest, NoPositives) {
  const std::vector<CurvePoint> curve = TopNCurve({1, 2}, {}, {2});
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.0);
  EXPECT_DOUBLE_EQ(curve[0].precision, 0.0);
}

TEST(TopNCurveTest, ZeroBudget) {
  const std::vector<CurvePoint> curve = TopNCurve({1}, {1}, {0});
  EXPECT_EQ(curve[0].n, 0u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 0.0);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(AveragePrecision({5, 6, 1, 2}, {5, 6}), 1.0);
}

TEST(AveragePrecisionTest, WorstRanking) {
  // Positives at the end of a length-4 ranking: AP = (1/3 + 2/4) / 2.
  EXPECT_NEAR(AveragePrecision({1, 2, 7, 8}, {7, 8}),
              (1.0 / 3.0 + 2.0 / 4.0) / 2.0, 1e-12);
}

TEST(AveragePrecisionTest, MissingPositivesContributeZero) {
  // Only one of two positives appears in the ranking.
  EXPECT_NEAR(AveragePrecision({7, 1}, {7, 99}), (1.0 / 1.0) / 2.0, 1e-12);
}

TEST(AveragePrecisionTest, NoPositives) {
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 2}, {}), 0.0);
}

}  // namespace
}  // namespace hido
