#include "eval/experiment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

TEST(ExperimentTest, BruteForceRunReportsBasics) {
  const Dataset data = GenerateUniform(200, 5, 1);
  ExperimentParams params;
  params.phi = 4;
  params.target_dim = 2;
  params.num_projections = 5;
  const SearchRun run = RunBruteForceExperiment(data, params);
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.best.size(), 5u);
  EXPECT_EQ(static_cast<double>(run.cubes_examined),
            BruteForceSearchSpace(5, 2, 4));
  EXPECT_LT(run.best_quality, 0.0);
  EXPECT_LE(run.best_quality, run.mean_quality);
  EXPECT_GE(run.seconds, 0.0);
}

TEST(ExperimentTest, MeanQualityIsMeanOfBest) {
  const Dataset data = GenerateUniform(300, 4, 2);
  ExperimentParams params;
  params.phi = 3;
  params.target_dim = 2;
  params.num_projections = 4;
  const SearchRun run = RunBruteForceExperiment(data, params);
  double sum = 0.0;
  for (const ScoredProjection& s : run.best) sum += s.sparsity;
  EXPECT_NEAR(run.mean_quality, sum / 4.0, 1e-12);
}

TEST(ExperimentTest, EvolutionaryRunMatchesBruteOnSmallSpace) {
  const Dataset data = GenerateUniform(300, 5, 3);
  ExperimentParams params;
  params.phi = 3;
  params.target_dim = 2;
  params.num_projections = 1;
  params.population_size = 60;
  params.max_generations = 60;
  params.restarts = 2;
  const SearchRun brute = RunBruteForceExperiment(data, params);
  const SearchRun evo =
      RunEvolutionaryExperiment(data, params, CrossoverKind::kOptimized);
  EXPECT_NEAR(evo.best_quality, brute.best_quality, 1e-9);
  EXPECT_GT(evo.cubes_examined, 0u);
}

TEST(ExperimentTest, BruteForceBudgetMarksIncomplete) {
  const Dataset data = GenerateUniform(2000, 30, 4);
  ExperimentParams params;
  params.phi = 10;
  params.target_dim = 4;
  params.num_projections = 5;
  params.brute_force_budget_seconds = 0.05;
  const SearchRun run = RunBruteForceExperiment(data, params);
  EXPECT_FALSE(run.completed);
}

TEST(ExperimentTest, CoveredRowsMatchPostprocessing) {
  SubspaceOutlierConfig config;
  config.num_points = 400;
  config.num_dims = 12;
  config.num_groups = 3;
  config.num_outliers = 4;
  config.seed = 5;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  ExperimentParams params;
  params.phi = 5;
  params.target_dim = 2;
  params.num_projections = 8;
  params.restarts = 4;
  const SearchRun run =
      RunEvolutionaryExperiment(g.data, params, CrossoverKind::kOptimized);
  const std::vector<size_t> rows = CoveredRows(g.data, 5, run.best);
  // Every returned row is genuinely covered by at least one projection.
  GridModel::Options gopts;
  gopts.phi = 5;
  const GridModel grid = GridModel::Build(g.data, gopts);
  for (size_t row : rows) {
    bool covered = false;
    for (const ScoredProjection& s : run.best) {
      covered |= grid.Covers(row, s.projection.Conditions());
    }
    EXPECT_TRUE(covered) << row;
  }
  // Total coverage equals the sum of counts minus overlaps: bounded by sum.
  size_t total = 0;
  for (const ScoredProjection& s : run.best) total += s.count;
  EXPECT_LE(rows.size(), total);
}

}  // namespace
}  // namespace hido
