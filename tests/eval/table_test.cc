#include "eval/table.h"

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a much longer name", "23456"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("a much longer name"), std::string::npos);
  // All lines have the same width.
  size_t width = 0;
  size_t start = 0;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    const size_t len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter table({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string out = table.ToString();
  // Header top+bottom, mid separator, final: 4 separator lines.
  size_t separators = 0;
  size_t pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++separators;
    pos += 2;
  }
  EXPECT_EQ(separators, 4u);
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter table({"Col"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Col"), std::string::npos);
}

TEST(TablePrinterDeathTest, WrongCellCountAborts) {
  TablePrinter table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only one"}), "cells");
}

TEST(FormatCellTest, Precision) {
  EXPECT_EQ(FormatCell(3.14159, 2), "3.14");
  EXPECT_EQ(FormatCell(-2.0, 1), "-2.0");
  EXPECT_EQ(FormatCell(1.0, 0), "1");
}

}  // namespace
}  // namespace hido
