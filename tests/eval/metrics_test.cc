#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(EvaluateRareClassesTest, PaperArrhythmiaNumbers) {
  // The paper: 85 flagged, 43 rare, base rate 14.6%.
  std::vector<int32_t> labels(452, 1);
  // 66 rare rows labelled class 3.
  for (size_t i = 0; i < 66; ++i) labels[i] = 3;
  std::vector<size_t> flagged;
  for (size_t i = 0; i < 43; ++i) flagged.push_back(i);         // rare
  for (size_t i = 100; i < 142; ++i) flagged.push_back(i);      // common
  const RareClassStats stats = EvaluateRareClasses(flagged, labels, {3});
  EXPECT_EQ(stats.flagged, 85u);
  EXPECT_EQ(stats.rare_flagged, 43u);
  EXPECT_NEAR(stats.precision, 43.0 / 85.0, 1e-12);
  EXPECT_NEAR(stats.recall, 43.0 / 66.0, 1e-12);
  EXPECT_NEAR(stats.lift, (43.0 / 85.0) / (66.0 / 452.0), 1e-12);
}

TEST(EvaluateRareClassesTest, EmptyFlagged) {
  const RareClassStats stats = EvaluateRareClasses({}, {1, 2, 3}, {3});
  EXPECT_EQ(stats.flagged, 0u);
  EXPECT_EQ(stats.precision, 0.0);
  EXPECT_EQ(stats.recall, 0.0);
}

TEST(EvaluateRareClassesTest, DuplicateFlagsCountOnce) {
  const std::vector<int32_t> labels = {3, 1};
  const RareClassStats stats =
      EvaluateRareClasses({0, 0, 0}, labels, {3});
  EXPECT_EQ(stats.flagged, 1u);
  EXPECT_EQ(stats.rare_flagged, 1u);
}

TEST(EvaluateRareClassesTest, MultipleRareClasses) {
  const std::vector<int32_t> labels = {3, 4, 1, 1};
  const RareClassStats stats =
      EvaluateRareClasses({0, 1, 2}, labels, {3, 4});
  EXPECT_EQ(stats.rare_flagged, 2u);
}

TEST(RecallPrecisionTest, BasicOverlap) {
  const std::vector<size_t> flagged = {1, 2, 3, 4};
  const std::vector<size_t> planted = {3, 4, 5};
  EXPECT_NEAR(RecallOfPlanted(flagged, planted), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(PrecisionOfPlanted(flagged, planted), 2.0 / 4.0, 1e-12);
}

TEST(RecallPrecisionTest, EmptySets) {
  EXPECT_EQ(RecallOfPlanted({1}, {}), 0.0);
  EXPECT_EQ(PrecisionOfPlanted({}, {1}), 0.0);
}

TEST(JaccardTest, KnownValues) {
  EXPECT_NEAR(JaccardOverlap({1, 2, 3}, {2, 3, 4}), 2.0 / 4.0, 1e-12);
  EXPECT_EQ(JaccardOverlap({1}, {2}), 0.0);
  EXPECT_EQ(JaccardOverlap({1, 2}, {2, 1}), 1.0);
  EXPECT_EQ(JaccardOverlap({}, {}), 1.0);
}

}  // namespace
}  // namespace hido
