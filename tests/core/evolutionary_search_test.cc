#include "core/evolutionary_search.h"

#include <algorithm>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/brute_force.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

struct Fixture {
  Fixture(const Dataset& data, size_t phi)
      : grid(GridModel::Build(data,
                              [&] {
                                GridModel::Options o;
                                o.phi = phi;
                                return o;
                              }())),
        counter(grid),
        objective(counter) {}
  GridModel grid;
  CubeCounter counter;
  SparsityObjective objective;
};

TEST(EvolutionarySearchTest, FindsProjectionsOfRequestedShape) {
  Fixture f(GenerateUniform(500, 10, 1), 5);
  EvolutionaryOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 10;
  opts.population_size = 30;
  opts.max_generations = 40;
  opts.seed = 1;
  const EvolutionResult result = EvolutionarySearch(f.objective, opts);
  EXPECT_LE(result.best.size(), 10u);
  EXPECT_FALSE(result.best.empty());
  for (const ScoredProjection& s : result.best) {
    EXPECT_EQ(s.projection.Dimensionality(), 3u);
    EXPECT_GE(s.count, 1u);
  }
  // Sorted best-first.
  for (size_t i = 1; i < result.best.size(); ++i) {
    EXPECT_LE(result.best[i - 1].sparsity, result.best[i].sparsity);
  }
}

TEST(EvolutionarySearchTest, DeterministicPerSeed) {
  Fixture f(GenerateUniform(300, 8, 2), 4);
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 5;
  opts.population_size = 20;
  opts.max_generations = 20;
  opts.seed = 99;
  const EvolutionResult a = EvolutionarySearch(f.objective, opts);
  const EvolutionResult b = EvolutionarySearch(f.objective, opts);
  ASSERT_EQ(a.best.size(), b.best.size());
  for (size_t i = 0; i < a.best.size(); ++i) {
    EXPECT_EQ(a.best[i].projection, b.best[i].projection);
    EXPECT_EQ(a.best[i].count, b.best[i].count);
  }
  EXPECT_EQ(a.stats.generations, b.stats.generations);
}

TEST(EvolutionarySearchTest, BitIdenticalResultsForAnyThreadCount) {
  // The determinism contract: with a fixed seed and no time budget, the
  // returned best set is bit-identical (projections, counts, sparsity
  // coefficients) for every thread count. Restarts exercise both parallel
  // axes: restarts-as-tasks and per-generation evaluation fan-out.
  SubspaceOutlierConfig config;
  config.num_points = 400;
  config.num_dims = 16;
  config.num_groups = 4;
  config.num_outliers = 6;
  config.seed = 21;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);

  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 12;
  opts.population_size = 30;
  opts.max_generations = 15;
  opts.restarts = 3;
  opts.seed = 77;

  std::vector<size_t> thread_counts = {1, 2, HardwareThreads()};
  std::vector<EvolutionResult> results;
  for (size_t threads : thread_counts) {
    Fixture f(g.data, 5);
    opts.num_threads = threads;
    results.push_back(EvolutionarySearch(f.objective, opts));
  }
  const EvolutionResult& serial = results.front();
  ASSERT_FALSE(serial.best.empty());
  for (size_t r = 1; r < results.size(); ++r) {
    const EvolutionResult& threaded = results[r];
    ASSERT_EQ(serial.best.size(), threaded.best.size())
        << "num_threads=" << thread_counts[r];
    for (size_t i = 0; i < serial.best.size(); ++i) {
      EXPECT_EQ(serial.best[i].projection, threaded.best[i].projection);
      EXPECT_EQ(serial.best[i].count, threaded.best[i].count);
      // Bit-identical, not merely close.
      EXPECT_EQ(serial.best[i].sparsity, threaded.best[i].sparsity);
    }
    EXPECT_EQ(serial.stats.generations, threaded.stats.generations);
    EXPECT_EQ(serial.stats.evaluations, threaded.stats.evaluations);
  }
}

TEST(EvolutionarySearchTest, StatsStayTruthfulUnderConcurrency) {
  // Evaluations done on private per-restart/per-worker counters must be
  // folded back into the caller's objective and its counter's statistics.
  Fixture f(GenerateUniform(300, 10, 3), 5);
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 5;
  opts.population_size = 20;
  opts.max_generations = 10;
  opts.restarts = 2;
  opts.num_threads = 2;
  opts.seed = 13;
  const EvolutionResult result = EvolutionarySearch(f.objective, opts);
  EXPECT_GT(result.stats.evaluations, 0u);
  EXPECT_EQ(f.objective.num_evaluations(), result.stats.evaluations);
  const CubeCounter::Stats stats = f.counter.stats();
  EXPECT_GT(stats.queries, 0u);
  EXPECT_EQ(stats.queries, stats.cache_hits + stats.bitset_counts +
                               stats.posting_counts + stats.naive_counts);
}

TEST(EvolutionarySearchTest, OversizedThreadCountIsClampedNotAllocated) {
  // A caller passing e.g. -1 cast to size_t must not make the search try
  // to allocate one counter per requested thread; scratch is clamped to
  // what the pool can actually deploy, and results match num_threads=1.
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 3;
  opts.population_size = 16;
  opts.max_generations = 6;
  opts.restarts = 2;
  opts.seed = 21;

  Fixture serial_f(GenerateUniform(200, 8, 3), 4);
  opts.num_threads = 1;
  const EvolutionResult serial = EvolutionarySearch(serial_f.objective, opts);

  Fixture huge_f(GenerateUniform(200, 8, 3), 4);
  opts.num_threads = std::numeric_limits<size_t>::max();
  const EvolutionResult huge = EvolutionarySearch(huge_f.objective, opts);

  ASSERT_EQ(serial.best.size(), huge.best.size());
  for (size_t i = 0; i < serial.best.size(); ++i) {
    EXPECT_EQ(serial.best[i].projection, huge.best[i].projection);
    EXPECT_EQ(serial.best[i].sparsity, huge.best[i].sparsity);
  }
}

TEST(EvolutionarySearchTest, FindsPlantedSparseCombination) {
  // The planted anomalies live in jointly-rare 2-d cells; the best 2-d
  // projections found by the GA should cover at least one planted row.
  SubspaceOutlierConfig config;
  config.num_points = 600;
  config.num_dims = 20;
  config.num_groups = 6;
  config.num_outliers = 6;
  config.outlier_subspace_dims = 2;
  config.seed = 5;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  Fixture f(g.data, 5);

  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 20;
  opts.population_size = 60;
  opts.max_generations = 60;
  opts.seed = 3;
  const EvolutionResult result = EvolutionarySearch(f.objective, opts);
  ASSERT_FALSE(result.best.empty());
  // Best projection is genuinely sparse.
  EXPECT_LT(result.best.front().sparsity, -1.0);
}

TEST(EvolutionarySearchTest, MatchesBruteForceOnSmallInstance) {
  // On a small search space the GA should find the optimum (Table 1's "*"
  // rows: same quality as brute force).
  Fixture f(GenerateUniform(400, 6, 7), 4);
  BruteForceOptions bopts;
  bopts.target_dim = 2;
  bopts.num_projections = 1;
  const BruteForceResult brute = BruteForceSearch(f.objective, bopts);

  EvolutionaryOptions eopts;
  eopts.target_dim = 2;
  eopts.num_projections = 1;
  eopts.population_size = 50;
  eopts.max_generations = 80;
  eopts.seed = 11;
  const EvolutionResult evo = EvolutionarySearch(f.objective, eopts);
  ASSERT_FALSE(evo.best.empty());
  EXPECT_NEAR(evo.best.front().sparsity, brute.best.front().sparsity, 1e-9);
}

TEST(EvolutionarySearchTest, StopsOnTimeBudget) {
  Fixture f(GenerateUniform(2000, 40, 8), 10);
  EvolutionaryOptions opts;
  opts.target_dim = 4;
  opts.num_projections = 10;
  opts.population_size = 200;
  opts.max_generations = 1000000;
  opts.stagnation_generations = 0;  // disabled
  opts.time_budget_seconds = 0.2;
  opts.seed = 4;
  const EvolutionResult result = EvolutionarySearch(f.objective, opts);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kTimeBudget);
  EXPECT_LT(result.stats.seconds, 5.0);
}

TEST(EvolutionarySearchTest, DeadlineExpiryOnInjectedClockReturnsValidPartial) {
  // The injected clock steps a fixed amount per read, so the budget expires
  // after a deterministic number of generation-boundary polls — the expiry
  // path is covered without any real sleeping or wall-clock dependence.
  Fixture f(GenerateUniform(300, 8, 2), 4);
  FakeClock clock(0.0, 0.1);
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 5;
  opts.population_size = 20;
  opts.max_generations = 200;
  opts.stagnation_generations = 0;
  opts.restarts = 4;
  opts.seed = 3;
  opts.time_budget_seconds = 1.0;  // expires on the 10th poll
  opts.clock = &clock;
  const EvolutionResult result = EvolutionarySearch(f.objective, opts);

  EXPECT_FALSE(result.stats.completed);
  EXPECT_EQ(result.stats.stop_cause, StopCause::kDeadline);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kTimeBudget);
  // Genuinely partial, but with a valid best-so-far report.
  EXPECT_LT(result.stats.generations, 4u * 200u);
  EXPECT_FALSE(result.best.empty());
  for (const ScoredProjection& s : result.best) {
    EXPECT_EQ(s.projection.Dimensionality(), 2u);
    EXPECT_GE(s.count, 1u);
  }
  for (size_t i = 1; i < result.best.size(); ++i) {
    EXPECT_LE(result.best[i - 1].sparsity, result.best[i].sparsity);
  }
  // Evaluation accounting stays truthful on the abort path: the partial run
  // consumed strictly fewer evaluations than the full batch would.
  EXPECT_GT(result.stats.evaluations, 0u);
}

TEST(EvolutionarySearchTest, PreCancelledTokenReturnsEmptyIncomplete) {
  Fixture f(GenerateUniform(200, 6, 5), 4);
  StopToken token;
  token.RequestCancel();
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 5;
  opts.stop = &token;
  const EvolutionResult result = EvolutionarySearch(f.objective, opts);
  EXPECT_FALSE(result.stats.completed);
  EXPECT_EQ(result.stats.stop_cause, StopCause::kCancelled);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(result.stats.evaluations, 0u);
  EXPECT_TRUE(result.best.empty());
}

TEST(EvolutionarySearchTest, FailpointInterruptIsDeterministic) {
  // Two runs interrupted at the same poll count must return the same
  // partial result when run serially — fault injection is reproducible.
  Fixture f(GenerateUniform(250, 8, 6), 4);
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 5;
  opts.population_size = 20;
  opts.max_generations = 60;
  opts.stagnation_generations = 0;
  opts.restarts = 2;
  opts.seed = 12;
  EvolutionResult runs[2];
  for (EvolutionResult& run : runs) {
    StopToken token;
    token.ArmFailpoint(25);
    opts.stop = &token;
    run = EvolutionarySearch(f.objective, opts);
    EXPECT_FALSE(run.stats.completed);
    EXPECT_EQ(run.stats.stop_cause, StopCause::kFailpoint);
  }
  ASSERT_EQ(runs[0].best.size(), runs[1].best.size());
  for (size_t i = 0; i < runs[0].best.size(); ++i) {
    EXPECT_EQ(runs[0].best[i].projection, runs[1].best[i].projection);
    EXPECT_EQ(runs[0].best[i].sparsity, runs[1].best[i].sparsity);
  }
  EXPECT_EQ(runs[0].stats.evaluations, runs[1].stats.evaluations);
  EXPECT_EQ(runs[0].stats.generations, runs[1].stats.generations);
}

TEST(EvolutionarySearchTest, StopsOnStagnation) {
  Fixture f(GenerateUniform(100, 4, 9), 3);
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 3;
  opts.population_size = 20;
  opts.max_generations = 100000;
  opts.stagnation_generations = 5;
  opts.convergence_threshold = 1.01;  // unreachable: isolate stagnation
  opts.time_budget_seconds = 0.0;
  opts.seed = 5;
  const EvolutionResult result = EvolutionarySearch(f.objective, opts);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kStagnation);
  EXPECT_LT(result.stats.generations, 100000u);
}

TEST(EvolutionarySearchTest, GenerationCallbackObservesProgress) {
  Fixture f(GenerateUniform(200, 6, 10), 4);
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 5;
  opts.population_size = 16;
  opts.max_generations = 10;
  opts.stagnation_generations = 0;
  opts.convergence_threshold = 1.01;
  opts.seed = 6;
  size_t calls = 0;
  size_t last_gen = 0;
  const EvolutionResult result = EvolutionarySearch(
      f.objective, opts,
      [&](size_t gen, const std::vector<Individual>& population,
          const BestSet& best) {
        ++calls;
        last_gen = gen;
        EXPECT_EQ(population.size(), 16u);
        EXPECT_LE(best.size(), 5u);
      });
  EXPECT_EQ(calls, result.stats.generations);
  EXPECT_EQ(last_gen + 1, result.stats.generations);
}

TEST(EvolutionarySearchTest, TwoPointCrossoverAlsoProducesResults) {
  Fixture f(GenerateUniform(300, 10, 11), 5);
  EvolutionaryOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 8;
  opts.population_size = 40;
  opts.max_generations = 40;
  opts.crossover = CrossoverKind::kTwoPoint;
  opts.seed = 7;
  const EvolutionResult result = EvolutionarySearch(f.objective, opts);
  EXPECT_FALSE(result.best.empty());
  for (const ScoredProjection& s : result.best) {
    EXPECT_EQ(s.projection.Dimensionality(), 3u);
  }
}

TEST(EvolutionarySearchTest, OptimizedBeatsTwoPointOnAverageQuality) {
  // The paper's central ablation (Gen vs Gen°): the optimized crossover
  // yields at-least-as-negative mean sparsity on structured data.
  SubspaceOutlierConfig config;
  config.num_points = 500;
  config.num_dims = 24;
  config.num_groups = 6;
  config.seed = 12;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);

  double two_point_total = 0.0;
  double optimized_total = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Fixture f(g.data, 5);
    EvolutionaryOptions opts;
    opts.target_dim = 3;
    opts.num_projections = 10;
    opts.population_size = 40;
    opts.max_generations = 30;
    opts.seed = seed;

    opts.crossover = CrossoverKind::kTwoPoint;
    const EvolutionResult two_point = EvolutionarySearch(f.objective, opts);
    opts.crossover = CrossoverKind::kOptimized;
    const EvolutionResult optimized = EvolutionarySearch(f.objective, opts);

    for (const auto& s : two_point.best) two_point_total += s.sparsity;
    for (const auto& s : optimized.best) optimized_total += s.sparsity;
  }
  EXPECT_LE(optimized_total, two_point_total);
}

TEST(EvolutionarySearchTest, ElitismNeverLosesTheBest) {
  // With elitism on, the fittest string in the population can only improve
  // from one generation to the next.
  Fixture f(GenerateUniform(400, 10, 31), 5);
  EvolutionaryOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 5;
  opts.population_size = 30;
  opts.max_generations = 40;
  opts.elitism = 2;
  opts.stagnation_generations = 0;
  opts.seed = 8;
  double last_best = std::numeric_limits<double>::infinity();
  EvolutionarySearch(
      f.objective, opts,
      [&](size_t, const std::vector<Individual>& population,
          const BestSet&) {
        double generation_best = std::numeric_limits<double>::infinity();
        for (const Individual& ind : population) {
          generation_best = std::min(generation_best, ind.sparsity);
        }
        EXPECT_LE(generation_best, last_best + 1e-12);
        last_best = generation_best;
      });
}

TEST(EvolutionarySearchTest, ElitismPreservesPopulationSize) {
  Fixture f(GenerateUniform(200, 8, 32), 4);
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 5;
  opts.population_size = 17;  // odd, with elitism
  opts.max_generations = 10;
  opts.elitism = 3;
  opts.seed = 9;
  EvolutionarySearch(f.objective, opts,
                     [&](size_t, const std::vector<Individual>& population,
                         const BestSet&) {
                       EXPECT_EQ(population.size(), 17u);
                     });
}

TEST(EvolutionarySearchDeathTest, InvalidOptions) {
  Fixture f(GenerateUniform(50, 3, 13), 3);
  EvolutionaryOptions opts;
  opts.target_dim = 5;  // > d
  EXPECT_DEATH(EvolutionarySearch(f.objective, opts), "target_dim");
  opts.target_dim = 2;
  opts.population_size = 1;
  EXPECT_DEATH(EvolutionarySearch(f.objective, opts), "population");
}

}  // namespace
}  // namespace hido
