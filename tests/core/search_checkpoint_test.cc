#include "core/search_checkpoint.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_control.h"
#include "core/evolutionary_search.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

struct Fixture {
  Fixture(const Dataset& data, size_t phi)
      : grid(GridModel::Build(data,
                              [&] {
                                GridModel::Options o;
                                o.phi = phi;
                                return o;
                              }())),
        counter(grid),
        objective(counter) {}
  GridModel grid;
  CubeCounter counter;
  SparsityObjective objective;
};

EvolutionaryOptions BaseOptions() {
  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 6;
  opts.population_size = 24;
  opts.max_generations = 40;
  opts.stagnation_generations = 0;  // run the full generation budget
  opts.restarts = 3;
  opts.seed = 17;
  return opts;
}

void ExpectSameResult(const EvolutionResult& a, const EvolutionResult& b) {
  ASSERT_EQ(a.best.size(), b.best.size());
  for (size_t i = 0; i < a.best.size(); ++i) {
    EXPECT_EQ(a.best[i].projection, b.best[i].projection) << "entry " << i;
    EXPECT_EQ(a.best[i].count, b.best[i].count) << "entry " << i;
    EXPECT_EQ(a.best[i].sparsity, b.best[i].sparsity) << "entry " << i;
  }
  EXPECT_EQ(a.stats.generations, b.stats.generations);
  EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
  // Cumulative operator tallies must survive interrupt/resume: a resumed
  // run reports the same totals as an uninterrupted one (telemetry
  // continuity, checkpoint format `ops` line, v2+).
  EXPECT_EQ(a.stats.crossovers, b.stats.crossovers);
  EXPECT_EQ(a.stats.mutations, b.stats.mutations);
  EXPECT_EQ(a.stats.selections, b.stats.selections);
  EXPECT_EQ(a.stats.stop_reason, b.stats.stop_reason);
}

TEST(SearchCheckpointTest, ShellFingerprintsOptionsAndGrid) {
  Fixture f(GenerateUniform(200, 6, 3), 4);
  const EvolutionaryOptions opts = BaseOptions();
  const EvolutionCheckpoint shell =
      MakeCheckpointShell(opts, f.grid, f.objective.expectation());
  EXPECT_EQ(shell.seed, opts.seed);
  EXPECT_EQ(shell.restarts, opts.restarts);
  EXPECT_EQ(shell.num_dims, f.grid.num_dims());
  EXPECT_EQ(shell.phi, f.grid.phi());
  ASSERT_EQ(shell.runs.size(), opts.restarts);
  for (const RestartCheckpoint& run : shell.runs) {
    EXPECT_EQ(run.state, RestartCheckpoint::State::kUnstarted);
  }
  EXPECT_TRUE(ValidateCheckpoint(shell, opts, f.grid,
                                 f.objective.expectation())
                  .ok());
}

TEST(SearchCheckpointTest, ValidateRejectsMismatchedFingerprint) {
  Fixture f(GenerateUniform(200, 6, 3), 4);
  const EvolutionaryOptions opts = BaseOptions();
  const EvolutionCheckpoint shell =
      MakeCheckpointShell(opts, f.grid, f.objective.expectation());

  EvolutionaryOptions changed = opts;
  changed.seed = opts.seed + 1;
  const Status bad_seed = ValidateCheckpoint(shell, changed, f.grid,
                                             f.objective.expectation());
  EXPECT_EQ(bad_seed.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(bad_seed.message().find("seed"), std::string::npos)
      << bad_seed.ToString();

  changed = opts;
  changed.population_size += 1;
  EXPECT_FALSE(ValidateCheckpoint(shell, changed, f.grid,
                                  f.objective.expectation())
                   .ok());

  Fixture other(GenerateUniform(200, 7, 3), 4);  // different num_dims
  EXPECT_FALSE(ValidateCheckpoint(shell, opts, other.grid,
                                  other.objective.expectation())
                   .ok());
}

TEST(SearchCheckpointTest, SerializeParseRoundTripsExactly) {
  // Run a real search that checkpoints, then require parse(serialize(x)) to
  // reproduce the serialization byte-for-byte — covers done/partial states,
  // infeasible individuals, and %.17g doubles in one shot.
  Fixture f(GenerateUniform(250, 6, 5), 4);
  EvolutionaryOptions opts = BaseOptions();
  const std::string path =
      ::testing::TempDir() + "/hido_checkpoint_roundtrip.txt";
  opts.checkpoint_path = path;
  opts.checkpoint_every_generations = 4;

  StopToken token;
  token.ArmFailpoint(9);  // interrupt mid-batch: leaves partial runs behind
  opts.stop = &token;
  EvolutionarySearch(f.objective, opts);

  Result<EvolutionCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::string first = SerializeCheckpoint(loaded.value());
  Result<EvolutionCheckpoint> reparsed = ParseCheckpoint(first);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(SerializeCheckpoint(reparsed.value()), first);
  std::remove(path.c_str());
}

TEST(SearchCheckpointTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseCheckpoint("").ok());
  EXPECT_FALSE(ParseCheckpoint("not a checkpoint").ok());
  EXPECT_FALSE(ParseCheckpoint("hido-checkpoint v3\nseed oops\n").ok());
}

TEST(SearchCheckpointTest, ParseRejectsOldFormatVersion) {
  // v1 files lack the per-restart `ops` tallies and v2 the widened
  // counter_stats breakdown; checkpoints are short-lived scratch state,
  // so old versions are rejected outright rather than migrated.
  EXPECT_FALSE(ParseCheckpoint("hido-checkpoint v1\nseed 17\n").ok());
  EXPECT_FALSE(ParseCheckpoint("hido-checkpoint v2\nseed 17\n").ok());
}

TEST(SearchCheckpointTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadCheckpoint("/nonexistent/dir/cp.txt").ok());
}

// The acceptance property: interrupt the search mid-batch, resume from the
// checkpoint, and the merged result is bit-identical to the uninterrupted
// run — at every thread count, including resuming under a different thread
// count than the interrupted run used.
class CheckpointResumeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(CheckpointResumeProperty, ResumeMatchesUninterruptedRun) {
  const size_t threads = GetParam();
  Fixture f(GenerateUniform(300, 8, 7), 4);

  EvolutionaryOptions opts = BaseOptions();
  opts.num_threads = threads;
  const EvolutionResult uninterrupted = EvolutionarySearch(f.objective, opts);
  EXPECT_TRUE(uninterrupted.stats.completed);

  const std::string path = ::testing::TempDir() + "/hido_checkpoint_t" +
                           std::to_string(threads) + ".txt";
  EvolutionaryOptions interrupted_opts = opts;
  interrupted_opts.checkpoint_path = path;
  interrupted_opts.checkpoint_every_generations = 3;
  StopToken token;
  token.ArmFailpoint(20);
  interrupted_opts.stop = &token;
  const EvolutionResult interrupted =
      EvolutionarySearch(f.objective, interrupted_opts);
  EXPECT_FALSE(interrupted.stats.completed);
  EXPECT_EQ(interrupted.stats.stop_cause, StopCause::kFailpoint);
  EXPECT_EQ(interrupted.stats.stop_reason, StopReason::kCancelled);

  Result<EvolutionCheckpoint> checkpoint = LoadCheckpoint(path);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  // Resume under a different thread count than the run was interrupted at.
  EvolutionaryOptions resume_opts = opts;
  resume_opts.num_threads = threads == 1 ? 4 : 1;
  resume_opts.resume = &checkpoint.value();
  const EvolutionResult resumed =
      EvolutionarySearch(f.objective, resume_opts);
  EXPECT_TRUE(resumed.stats.completed);
  ExpectSameResult(uninterrupted, resumed);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CheckpointResumeProperty,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "threads_" + std::to_string(info.param);
                         });

TEST(SearchCheckpointTest, ResumingACompletedCheckpointReplaysIt) {
  Fixture f(GenerateUniform(250, 6, 11), 4);
  EvolutionaryOptions opts = BaseOptions();
  const std::string path =
      ::testing::TempDir() + "/hido_checkpoint_done.txt";
  opts.checkpoint_path = path;
  const EvolutionResult full = EvolutionarySearch(f.objective, opts);
  EXPECT_TRUE(full.stats.completed);

  Result<EvolutionCheckpoint> checkpoint = LoadCheckpoint(path);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  for (const RestartCheckpoint& run : checkpoint.value().runs) {
    EXPECT_EQ(run.state, RestartCheckpoint::State::kDone);
  }

  EvolutionaryOptions resume_opts = opts;
  resume_opts.checkpoint_path.clear();
  resume_opts.resume = &checkpoint.value();
  const EvolutionResult replayed =
      EvolutionarySearch(f.objective, resume_opts);
  ExpectSameResult(full, replayed);
  std::remove(path.c_str());
}

TEST(SearchCheckpointDeathTest, ResumeWithMismatchedOptionsRefuses) {
  Fixture f(GenerateUniform(200, 6, 3), 4);
  const EvolutionaryOptions opts = BaseOptions();
  const EvolutionCheckpoint shell =
      MakeCheckpointShell(opts, f.grid, f.objective.expectation());
  EvolutionaryOptions changed = opts;
  changed.seed = opts.seed + 1;
  changed.resume = &shell;
  EXPECT_DEATH(EvolutionarySearch(f.objective, changed), "seed");
}

}  // namespace
}  // namespace hido
