#include "core/genetic/convergence.h"

#include <gtest/gtest.h>

namespace hido {
namespace {

Individual Make(const std::vector<int>& cells) {
  Individual ind;
  ind.projection = Projection(cells.size());
  for (size_t pos = 0; pos < cells.size(); ++pos) {
    if (cells[pos] >= 0) {
      ind.projection.Specify(pos, static_cast<uint32_t>(cells[pos]));
    }
  }
  return ind;
}

TEST(ConvergenceTest, IdenticalPopulationConverged) {
  std::vector<Individual> population(10, Make({1, -1, 3}));
  EXPECT_TRUE(PopulationConverged(population));
  EXPECT_DOUBLE_EQ(GeneAgreement(population, 0), 1.0);
  EXPECT_DOUBLE_EQ(GeneAgreement(population, 1), 1.0);
}

TEST(ConvergenceTest, DivergentGeneBlocksConvergence) {
  std::vector<Individual> population;
  for (int i = 0; i < 5; ++i) population.push_back(Make({1, -1}));
  for (int i = 0; i < 5; ++i) population.push_back(Make({2, -1}));
  EXPECT_DOUBLE_EQ(GeneAgreement(population, 0), 0.5);
  EXPECT_DOUBLE_EQ(GeneAgreement(population, 1), 1.0);
  EXPECT_FALSE(PopulationConverged(population));
}

TEST(ConvergenceTest, DontCareIsAnAllele) {
  // A gene where 95% have * and 5% have a value counts as converged.
  std::vector<Individual> population;
  for (int i = 0; i < 19; ++i) population.push_back(Make({-1}));
  population.push_back(Make({3}));
  EXPECT_DOUBLE_EQ(GeneAgreement(population, 0), 0.95);
  EXPECT_TRUE(PopulationConverged(population, 0.95));
  EXPECT_FALSE(PopulationConverged(population, 0.96));
}

TEST(ConvergenceTest, DontCareDiffersFromCellZero)
{
  std::vector<Individual> population;
  for (int i = 0; i < 5; ++i) population.push_back(Make({-1}));
  for (int i = 0; i < 5; ++i) population.push_back(Make({0}));
  EXPECT_DOUBLE_EQ(GeneAgreement(population, 0), 0.5);
}

TEST(ConvergenceTest, ThresholdBoundary) {
  // De Jong's 95% criterion: exactly 95% agreement converges.
  std::vector<Individual> population;
  for (int i = 0; i < 95; ++i) population.push_back(Make({2, 7}));
  for (int i = 0; i < 5; ++i) population.push_back(Make({3, 7}));
  EXPECT_TRUE(PopulationConverged(population, 0.95));
  EXPECT_FALSE(PopulationConverged(population, 0.951));
}

TEST(ConvergenceTest, DontCareDominatedPopulationIsNotConverged) {
  // Regression for the subtle failure mode of the literal De Jong
  // criterion: with d >> k, every gene is dominated by "*" from generation
  // zero (here each of 50 genes is >= 96% "*"), yet the population below
  // holds 25 pairwise-distinct strings and must not count as converged.
  std::vector<Individual> population;
  for (int i = 0; i < 25; ++i) {
    std::vector<int> cells(50, -1);
    cells[2 * i] = i % 3;
    cells[2 * i + 1] = 1;
    population.push_back(Make(cells));
  }
  // The literal per-gene statistic is high everywhere ("*" dominates)...
  for (size_t pos = 0; pos < 50; ++pos) {
    EXPECT_GE(GeneAgreement(population, pos), 0.9);
  }
  // ...but the population is maximally diverse.
  EXPECT_FALSE(PopulationConverged(population));
}

TEST(ConvergenceDeathTest, EmptyPopulationAborts) {
  std::vector<Individual> population;
  EXPECT_DEATH(PopulationConverged(population), "empty");
}

}  // namespace
}  // namespace hido
