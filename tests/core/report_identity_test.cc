// The determinism contract, end to end: the detection report is a pure
// function of (data, seed, logical configuration). Counting kernels,
// container thresholds, thread counts, and cache modes change which code
// computes each count — never the count — so the serialized report must
// be byte-identical across all of them.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitset_kernels.h"
#include "core/detector.h"
#include "core/report_io.h"
#include "data/generators/synthetic.h"
#include "grid/grid_model.h"

namespace hido {
namespace {

DetectorConfig BaseConfig() {
  DetectorConfig config;
  config.phi = 5;
  config.target_dim = 3;
  config.num_projections = 6;
  config.evolution.population_size = 30;
  config.evolution.max_generations = 20;
  config.evolution.restarts = 1;
  config.seed = 11;
  return config;
}

std::string RunAndSerialize(const Dataset& data, const DetectorConfig& config) {
  const DetectionResult result = OutlierDetector(config).Detect(data);
  return ProjectionsToCsv(result.report) + OutliersToCsv(result.report);
}

// Every (kernel, container threshold, threads, cache mode) variant must
// reproduce the baseline report byte for byte.
TEST(ReportIdentityTest, InvariantAcrossKernelsContainersThreadsAndCaches) {
  SubspaceOutlierConfig gen;
  gen.num_points = 250;
  gen.num_dims = 8;
  gen.num_groups = 2;
  gen.num_outliers = 4;
  gen.seed = 3;
  const GeneratedDataset g = GenerateSubspaceOutliers(gen);

  const std::string baseline = RunAndSerialize(g.data, BaseConfig());
  ASSERT_FALSE(baseline.empty());

  // Kernel axis: force every kernel this host can run.
  for (KernelKind kind : AvailableKernels()) {
    ScopedKernelOverride forced(kind);
    EXPECT_EQ(RunAndSerialize(g.data, BaseConfig()), baseline)
        << "kernel " << KernelKindName(kind);
  }

  // Container-threshold axis: all bitmaps, all arrays, and the auto mix.
  for (size_t threshold :
       {size_t{0}, size_t{gen.num_points + 1}, GridModel::kAutoArrayThreshold}) {
    DetectorConfig config = BaseConfig();
    config.container_threshold = threshold;
    EXPECT_EQ(RunAndSerialize(g.data, config), baseline)
        << "container_threshold " << threshold;
  }

  // Thread axis.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    DetectorConfig config = BaseConfig();
    config.num_threads = threads;
    EXPECT_EQ(RunAndSerialize(g.data, config), baseline)
        << "threads " << threads;
  }

  // Cache-mode axis.
  for (CubeCacheMode mode :
       {CubeCacheMode::kPrivate, CubeCacheMode::kShared, CubeCacheMode::kOff}) {
    DetectorConfig config = BaseConfig();
    config.cache_mode = mode;
    EXPECT_EQ(RunAndSerialize(g.data, config), baseline)
        << "cache mode " << CubeCacheModeToString(mode);
  }

  // Cross terms: the axes compose — a scalar-kernel, all-array,
  // multi-threaded, cache-off run still reproduces the baseline.
  {
    ScopedKernelOverride forced(KernelKind::kScalar);
    DetectorConfig config = BaseConfig();
    config.container_threshold = gen.num_points + 1;
    config.num_threads = 8;
    config.cache_mode = CubeCacheMode::kOff;
    EXPECT_EQ(RunAndSerialize(g.data, config), baseline);
  }
  {
    ScopedKernelOverride forced(BestAvailableKernel());
    DetectorConfig config = BaseConfig();
    config.container_threshold = 0;
    config.num_threads = 2;
    config.cache_mode = CubeCacheMode::kPrivate;
    EXPECT_EQ(RunAndSerialize(g.data, config), baseline);
  }
}

// Same contract for the brute-force search, which drives the container
// AndInto/MaterializeInto descent directly.
TEST(ReportIdentityTest, BruteForceInvariantAcrossKernelsAndContainers) {
  SubspaceOutlierConfig gen;
  gen.num_points = 150;
  gen.num_dims = 5;
  gen.num_groups = 2;
  gen.num_outliers = 3;
  gen.seed = 9;
  const GeneratedDataset g = GenerateSubspaceOutliers(gen);

  DetectorConfig base = BaseConfig();
  base.algorithm = SearchAlgorithm::kBruteForce;
  base.target_dim = 2;
  const std::string baseline = RunAndSerialize(g.data, base);
  ASSERT_FALSE(baseline.empty());

  for (KernelKind kind : AvailableKernels()) {
    for (size_t threshold : {size_t{0}, size_t{gen.num_points + 1}}) {
      ScopedKernelOverride forced(kind);
      DetectorConfig config = base;
      config.container_threshold = threshold;
      EXPECT_EQ(RunAndSerialize(g.data, config), baseline)
          << KernelKindName(kind) << " threshold " << threshold;
    }
  }
}

}  // namespace
}  // namespace hido
