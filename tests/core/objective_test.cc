#include "core/objective.h"

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

struct Fixture {
  explicit Fixture(size_t n = 500, size_t d = 4, size_t phi = 5,
                   uint64_t seed = 1)
      : grid(GridModel::Build(GenerateUniform(n, d, seed),
                              [&] {
                                GridModel::Options o;
                                o.phi = phi;
                                return o;
                              }())),
        counter(grid) {}
  GridModel grid;
  CubeCounter counter;
};

TEST(SparsityObjectiveTest, EvaluateMatchesManualComputation) {
  Fixture f;
  SparsityObjective objective(f.counter);
  Projection p(4);
  p.Specify(0, 1);
  p.Specify(2, 3);
  const CubeEvaluation eval = objective.Evaluate(p);
  const size_t count = f.counter.Count(p.Conditions());
  EXPECT_EQ(eval.count, count);
  EXPECT_NEAR(eval.sparsity, objective.model().Coefficient(count, 2), 1e-12);
}

TEST(SparsityObjectiveTest, ScoreWrapsEvaluate) {
  Fixture f;
  SparsityObjective objective(f.counter);
  Projection p(4);
  p.Specify(1, 0);
  const ScoredProjection scored = objective.Score(p);
  EXPECT_EQ(scored.projection, p);
  EXPECT_EQ(scored.count, f.counter.Count(p.Conditions()));
}

TEST(SparsityObjectiveTest, CountsEvaluations) {
  Fixture f;
  SparsityObjective objective(f.counter);
  Projection p(4);
  p.Specify(0, 0);
  EXPECT_EQ(objective.num_evaluations(), 0u);
  objective.Evaluate(p);
  objective.Evaluate(p);
  EXPECT_EQ(objective.num_evaluations(), 2u);
}

TEST(SparsityObjectiveTest, UniformModeOnEquiDepthDataNearZeroFor1D) {
  // Equi-depth 1-dimensional ranges hold ~N/phi points, so each 1-cube's
  // sparsity coefficient is ~0 under the uniform model.
  Fixture f(2000, 3, 10, 3);
  SparsityObjective objective(f.counter);
  for (uint32_t cell = 0; cell < 10; ++cell) {
    Projection p(3);
    p.Specify(0, cell);
    EXPECT_NEAR(objective.Evaluate(p).sparsity, 0.0, 0.5) << "cell " << cell;
  }
}

TEST(SparsityObjectiveTest, EmpiricalModeCorrectsSkewedMarginals) {
  // A column where 80% of values are identical: equi-depth degenerates, the
  // big cell holds far more than N/phi. Uniform mode calls the big cell
  // dense and the dead cells empty; empirical mode scores every cell ~0
  // because it uses actual marginals.
  Dataset ds(1);
  for (int i = 0; i < 800; ++i) ds.AppendRow({1.0});
  for (int i = 0; i < 200; ++i) {
    ds.AppendRow({2.0 + static_cast<double>(i) / 200.0});
  }
  GridModel::Options gopts;
  gopts.phi = 5;
  const GridModel grid = GridModel::Build(ds, gopts);
  CubeCounter counter(grid);

  SparsityObjective uniform(counter, ExpectationModel::kUniform);
  SparsityObjective empirical(counter, ExpectationModel::kEmpiricalMarginals);

  const uint32_t big_cell = grid.Cell(0, 0);  // the 80% clump
  Projection p(1);
  p.Specify(0, big_cell);
  EXPECT_GT(uniform.Evaluate(p).sparsity, 3.0);      // "dense" artifact
  EXPECT_NEAR(empirical.Evaluate(p).sparsity, 0.0, 1e-6);
}

TEST(SparsityObjectiveDeathTest, EmptyProjectionAborts) {
  Fixture f;
  SparsityObjective objective(f.counter);
  const Projection p(4);
  EXPECT_DEATH(objective.Evaluate(p), "empty");
}

}  // namespace
}  // namespace hido
