#include "core/local_search.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

struct Fixture {
  Fixture(const Dataset& data, size_t phi)
      : grid(GridModel::Build(data,
                              [&] {
                                GridModel::Options o;
                                o.phi = phi;
                                return o;
                              }())),
        counter(grid),
        objective(counter) {}
  GridModel grid;
  CubeCounter counter;
  SparsityObjective objective;
};

class LocalSearchMethods
    : public ::testing::TestWithParam<LocalSearchMethod> {};

TEST_P(LocalSearchMethods, ProducesValidSortedResults) {
  Fixture f(GenerateUniform(400, 8, 1), 4);
  LocalSearchOptions opts;
  opts.method = GetParam();
  opts.target_dim = 2;
  opts.num_projections = 10;
  opts.max_evaluations = 5000;
  opts.seed = 3;
  const LocalSearchResult result = LocalSearch(f.objective, opts);
  EXPECT_FALSE(result.best.empty());
  EXPECT_LE(result.best.size(), 10u);
  EXPECT_LE(result.stats.evaluations, 5000u);
  for (size_t i = 0; i < result.best.size(); ++i) {
    EXPECT_EQ(result.best[i].projection.Dimensionality(), 2u);
    EXPECT_GE(result.best[i].count, 1u);
    if (i > 0) {
      EXPECT_LE(result.best[i - 1].sparsity, result.best[i].sparsity);
    }
  }
}

TEST_P(LocalSearchMethods, DeterministicPerSeed) {
  Fixture f(GenerateUniform(200, 6, 2), 4);
  LocalSearchOptions opts;
  opts.method = GetParam();
  opts.target_dim = 2;
  opts.num_projections = 5;
  opts.max_evaluations = 2000;
  opts.seed = 17;
  const LocalSearchResult a = LocalSearch(f.objective, opts);
  const LocalSearchResult b = LocalSearch(f.objective, opts);
  ASSERT_EQ(a.best.size(), b.best.size());
  for (size_t i = 0; i < a.best.size(); ++i) {
    EXPECT_EQ(a.best[i].projection, b.best[i].projection);
  }
  EXPECT_EQ(a.stats.evaluations, b.stats.evaluations);
}

TEST_P(LocalSearchMethods, FindsOptimumOnTinySpace) {
  // 4 dims x 3 cells, k=2: 54 cubes — any sane search with a 4000-eval
  // budget must find the global optimum.
  Fixture f(GenerateUniform(300, 4, 3), 3);
  BruteForceOptions bopts;
  bopts.target_dim = 2;
  bopts.num_projections = 1;
  const BruteForceResult brute = BruteForceSearch(f.objective, bopts);

  LocalSearchOptions opts;
  opts.method = GetParam();
  opts.target_dim = 2;
  opts.num_projections = 1;
  opts.max_evaluations = 4000;
  opts.seed = 5;
  const LocalSearchResult result = LocalSearch(f.objective, opts);
  ASSERT_FALSE(result.best.empty());
  EXPECT_NEAR(result.best.front().sparsity, brute.best.front().sparsity,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, LocalSearchMethods,
    ::testing::Values(LocalSearchMethod::kRandomSearch,
                      LocalSearchMethod::kHillClimbing,
                      LocalSearchMethod::kSimulatedAnnealing),
    [](const ::testing::TestParamInfo<LocalSearchMethod>& info) {
      switch (info.param) {
        case LocalSearchMethod::kRandomSearch:
          return "RandomSearch";
        case LocalSearchMethod::kHillClimbing:
          return "HillClimbing";
        case LocalSearchMethod::kSimulatedAnnealing:
          return "SimulatedAnnealing";
      }
      return "Unknown";
    });

TEST(LocalSearchTest, HillClimbingRecordsRestarts) {
  Fixture f(GenerateUniform(200, 8, 4), 4);
  LocalSearchOptions opts;
  opts.method = LocalSearchMethod::kHillClimbing;
  opts.target_dim = 2;
  opts.max_evaluations = 3000;
  opts.stall_limit = 16;
  opts.seed = 7;
  const LocalSearchResult result = LocalSearch(f.objective, opts);
  EXPECT_GT(result.stats.restarts, 1u);
  EXPECT_GT(result.stats.accepted_moves, 0u);
}

TEST(LocalSearchTest, AnnealingAcceptsUphillEarly) {
  // With a high initial temperature the Metropolis rule accepts worse
  // moves; accepted moves should clearly exceed the count of strictly
  // improving moves a pure hill climber would take.
  Fixture f(GenerateUniform(300, 8, 4), 4);
  LocalSearchOptions opts;
  opts.target_dim = 2;
  opts.max_evaluations = 3000;
  opts.seed = 9;

  opts.method = LocalSearchMethod::kSimulatedAnnealing;
  opts.initial_temperature = 10.0;
  opts.cooling = 0.99999;
  const LocalSearchResult hot = LocalSearch(f.objective, opts);
  // At T=10 nearly every move is accepted.
  EXPECT_GT(hot.stats.accepted_moves, 3000u / 2);
}

TEST(LocalSearchTest, EmptyCubesExcludedByDefault) {
  // Very sparse data: most cubes are empty; results must still be
  // non-empty cubes only.
  Fixture f(GenerateUniform(30, 6, 5), 5);
  LocalSearchOptions opts;
  opts.method = LocalSearchMethod::kRandomSearch;
  opts.target_dim = 3;
  opts.max_evaluations = 3000;
  opts.seed = 11;
  const LocalSearchResult result = LocalSearch(f.objective, opts);
  for (const ScoredProjection& s : result.best) {
    EXPECT_GE(s.count, 1u);
  }
}

TEST(LocalSearchDeathTest, InvalidOptions) {
  Fixture f(GenerateUniform(50, 3, 12), 3);
  LocalSearchOptions opts;
  opts.target_dim = 9;
  EXPECT_DEATH(LocalSearch(f.objective, opts), "target_dim");
  opts.target_dim = 2;
  opts.cooling = 1.5;
  EXPECT_DEATH(LocalSearch(f.objective, opts), "cooling");
}

}  // namespace
}  // namespace hido
