#include "core/postprocess.h"

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"
#include "grid/cube_counter.h"

namespace hido {
namespace {

TEST(PostprocessTest, CoveredPointsBecomeOutliers) {
  Dataset ds(2);
  for (int i = 0; i < 40; ++i) ds.AppendRow({0.1, 0.1});
  for (int i = 0; i < 40; ++i) ds.AppendRow({0.9, 0.9});
  ds.AppendRow({0.1, 0.9});  // row 80: the lonely combination
  GridModel::Options gopts;
  gopts.phi = 2;
  gopts.mode = BinningMode::kEquiWidth;
  const GridModel grid = GridModel::Build(ds, gopts);

  ScoredProjection sparse_cube;
  sparse_cube.projection = Projection(2);
  sparse_cube.projection.Specify(0, 0);
  sparse_cube.projection.Specify(1, 1);
  sparse_cube.count = 1;
  sparse_cube.sparsity = -4.0;

  const OutlierReport report = ExtractOutliers(grid, {sparse_cube});
  ASSERT_EQ(report.outliers.size(), 1u);
  EXPECT_EQ(report.outliers[0].row, 80u);
  EXPECT_EQ(report.outliers[0].projection_ids, (std::vector<size_t>{0}));
  EXPECT_DOUBLE_EQ(report.outliers[0].best_sparsity, -4.0);
}

TEST(PostprocessTest, PointCoveredByMultipleProjections) {
  Dataset ds(3);
  for (int i = 0; i < 30; ++i) ds.AppendRow({0.1, 0.1, 0.1});
  ds.AppendRow({0.9, 0.9, 0.9});  // row 30 alone in the high corner
  GridModel::Options gopts;
  gopts.phi = 2;
  gopts.mode = BinningMode::kEquiWidth;
  const GridModel grid = GridModel::Build(ds, gopts);

  std::vector<ScoredProjection> projections;
  for (size_t d = 0; d + 1 < 3; ++d) {
    ScoredProjection s;
    s.projection = Projection(3);
    s.projection.Specify(d, 1);
    s.projection.Specify(d + 1, 1);
    s.count = 1;
    s.sparsity = -2.0 - static_cast<double>(d);
    projections.push_back(s);
  }
  const OutlierReport report = ExtractOutliers(grid, projections);
  ASSERT_EQ(report.outliers.size(), 1u);
  const OutlierRecord& record = report.outliers[0];
  EXPECT_EQ(record.row, 30u);
  EXPECT_EQ(record.projection_ids.size(), 2u);
  EXPECT_DOUBLE_EQ(record.best_sparsity, -3.0);  // most negative of the two
}

TEST(PostprocessTest, OutliersSortedByStrength) {
  const Dataset ds = GenerateUniform(200, 4, 3);
  GridModel::Options gopts;
  gopts.phi = 4;
  const GridModel grid = GridModel::Build(ds, gopts);
  CubeCounter counter(grid);

  // Two non-empty cubes with different sparsities.
  std::vector<ScoredProjection> projections;
  Rng rng(4);
  while (projections.size() < 3) {
    Projection p = Projection::Random(4, 2, 4, rng);
    const size_t count = counter.Count(p.Conditions());
    if (count == 0) continue;
    ScoredProjection s;
    s.projection = p;
    s.count = count;
    s.sparsity = -static_cast<double>(projections.size() + 1);
    projections.push_back(s);
  }
  const OutlierReport report = ExtractOutliers(grid, projections);
  for (size_t i = 1; i < report.outliers.size(); ++i) {
    EXPECT_LE(report.outliers[i - 1].best_sparsity,
              report.outliers[i].best_sparsity);
  }
}

TEST(PostprocessTest, EmptyProjectionListYieldsNoOutliers) {
  const Dataset ds = GenerateUniform(50, 3, 5);
  GridModel::Options gopts;
  gopts.phi = 3;
  const GridModel grid = GridModel::Build(ds, gopts);
  const OutlierReport report = ExtractOutliers(grid, {});
  EXPECT_TRUE(report.outliers.empty());
  EXPECT_TRUE(report.projections.empty());
}

TEST(PostprocessTest, ExplainOutlierMentionsColumnsAndRanges) {
  Dataset ds(2);
  ds.SetColumnName(0, "crime");
  ds.SetColumnName(1, "distance");
  for (int i = 0; i < 20; ++i) ds.AppendRow({0.1, 0.1});
  ds.AppendRow({0.95, 0.9});
  GridModel::Options gopts;
  gopts.phi = 2;
  gopts.mode = BinningMode::kEquiWidth;
  const GridModel grid = GridModel::Build(ds, gopts);

  ScoredProjection s;
  s.projection = Projection(2);
  s.projection.Specify(0, 1);
  s.projection.Specify(1, 1);
  s.count = 1;
  s.sparsity = -3.5;
  const OutlierReport report = ExtractOutliers(grid, {s});
  ASSERT_EQ(report.outliers.size(), 1u);
  const std::string text = ExplainOutlier(report, 0, grid, ds);
  EXPECT_NE(text.find("row 20"), std::string::npos);
  EXPECT_NE(text.find("crime"), std::string::npos);
  EXPECT_NE(text.find("distance"), std::string::npos);
  EXPECT_NE(text.find("-3.5"), std::string::npos);
}

TEST(PostprocessDeathTest, ExplainOutOfRangeAborts) {
  const Dataset ds = GenerateUniform(20, 2, 6);
  GridModel::Options gopts;
  gopts.phi = 2;
  const GridModel grid = GridModel::Build(ds, gopts);
  const OutlierReport report = ExtractOutliers(grid, {});
  EXPECT_DEATH(ExplainOutlier(report, 0, grid, ds), "outlier_index");
}

}  // namespace
}  // namespace hido
