#include "core/brute_force.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

struct Fixture {
  Fixture(size_t n, size_t d, size_t phi, uint64_t seed)
      : grid(GridModel::Build(GenerateUniform(n, d, seed),
                              [&] {
                                GridModel::Options o;
                                o.phi = phi;
                                return o;
                              }())),
        counter(grid),
        objective(counter) {}
  GridModel grid;
  CubeCounter counter;
  SparsityObjective objective;
};

// Reference: enumerate every k-cube by recursion over sorted dim choices.
void EnumerateAll(const GridModel& grid, size_t k, size_t start,
                  std::vector<DimRange>& prefix,
                  std::vector<std::vector<DimRange>>& out) {
  if (prefix.size() == k) {
    out.push_back(prefix);
    return;
  }
  for (size_t d = start; d < grid.num_dims(); ++d) {
    for (uint32_t cell = 0; cell < grid.phi(); ++cell) {
      prefix.push_back({static_cast<uint32_t>(d), cell});
      EnumerateAll(grid, k, d + 1, prefix, out);
      prefix.pop_back();
    }
  }
}

TEST(BruteForceTest, MatchesNaiveEnumerationOptimum) {
  Fixture f(300, 5, 3, 1);
  BruteForceOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 5;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  ASSERT_EQ(result.best.size(), 5u);
  EXPECT_TRUE(result.stats.completed);

  // Reference computation.
  std::vector<std::vector<DimRange>> cubes;
  std::vector<DimRange> prefix;
  EnumerateAll(f.grid, 2, 0, prefix, cubes);
  EXPECT_EQ(cubes.size(),
            static_cast<size_t>(BruteForceSearchSpace(5, 2, 3)));
  std::vector<double> sparsities;
  for (const auto& cube : cubes) {
    const CubeEvaluation eval = f.objective.EvaluateConditions(cube);
    if (eval.count > 0) sparsities.push_back(eval.sparsity);
  }
  std::sort(sparsities.begin(), sparsities.end());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(result.best[i].sparsity, sparsities[i], 1e-12) << i;
  }
}

TEST(BruteForceTest, ResultsSortedBestFirstAndNonEmpty) {
  Fixture f(400, 6, 4, 2);
  BruteForceOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 10;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  for (size_t i = 0; i < result.best.size(); ++i) {
    EXPECT_GE(result.best[i].count, 1u);
    EXPECT_EQ(result.best[i].projection.Dimensionality(), 3u);
    if (i > 0) {
      EXPECT_LE(result.best[i - 1].sparsity, result.best[i].sparsity);
    }
  }
}

TEST(BruteForceTest, PruningDoesNotChangeResults) {
  Fixture f(40, 5, 4, 3);  // sparse enough that empty partial cubes exist
  BruteForceOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 8;

  opts.prune_empty_subtrees = true;
  const BruteForceResult pruned = BruteForceSearch(f.objective, opts);
  opts.prune_empty_subtrees = false;
  const BruteForceResult full = BruteForceSearch(f.objective, opts);

  EXPECT_GT(pruned.stats.subtrees_pruned, 0u);
  EXPECT_LT(pruned.stats.cubes_evaluated, full.stats.cubes_evaluated);
  ASSERT_EQ(pruned.best.size(), full.best.size());
  for (size_t i = 0; i < pruned.best.size(); ++i) {
    EXPECT_NEAR(pruned.best[i].sparsity, full.best[i].sparsity, 1e-12);
  }
}

TEST(BruteForceTest, CubesEvaluatedMatchesSearchSpaceWithoutPruning) {
  Fixture f(100, 4, 3, 4);
  BruteForceOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 3;
  opts.prune_empty_subtrees = false;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  EXPECT_EQ(static_cast<double>(result.stats.cubes_evaluated),
            BruteForceSearchSpace(4, 2, 3));
}

TEST(BruteForceTest, EmptyCubesReportedWhenAllowed) {
  // 20 points in a phi=4 grid: most 3-cubes are empty.
  Fixture f(20, 5, 4, 5);
  BruteForceOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 5;
  opts.require_non_empty = false;
  opts.prune_empty_subtrees = false;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  ASSERT_FALSE(result.best.empty());
  // The most negative cubes are the empty ones.
  EXPECT_EQ(result.best[0].count, 0u);
  EXPECT_NEAR(result.best[0].sparsity,
              f.objective.model().EmptyCubeCoefficient(3), 1e-12);
}

TEST(BruteForceTest, MaxCubesBudgetStopsEarly) {
  Fixture f(200, 8, 5, 6);
  BruteForceOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 5;
  opts.max_cubes = 100;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  EXPECT_FALSE(result.stats.completed);
  EXPECT_LE(result.stats.cubes_evaluated, 100u);
}

TEST(BruteForceTest, PublishedBudgetMatchesEvaluatedCubes) {
  // The shared budget counter the workers publish into must agree with the
  // per-worker statistics merged into the result — every leaf is flushed
  // before the merge, including work done between the last periodic flush
  // and an abort.
  Fixture f(400, 10, 4, 23);

  // Run to completion, serial and parallel.
  for (size_t threads : {1u, 4u}) {
    BruteForceOptions opts;
    opts.target_dim = 3;
    opts.num_projections = 5;
    opts.num_threads = threads;
    const BruteForceResult result = BruteForceSearch(f.objective, opts);
    EXPECT_TRUE(result.stats.completed);
    EXPECT_EQ(result.stats.cubes_published, result.stats.cubes_evaluated)
        << "threads=" << threads;
  }

  // Aborted mid-subtree by the cube budget, serial and parallel.
  for (size_t threads : {1u, 4u}) {
    BruteForceOptions opts;
    opts.target_dim = 3;
    opts.num_projections = 5;
    opts.max_cubes = 50;
    opts.num_threads = threads;
    const BruteForceResult result = BruteForceSearch(f.objective, opts);
    EXPECT_FALSE(result.stats.completed);
    EXPECT_GT(result.stats.cubes_evaluated, 0u);
    EXPECT_EQ(result.stats.cubes_published, result.stats.cubes_evaluated)
        << "threads=" << threads;
  }
}

TEST(BruteForceTest, OversizedThreadCountIsClampedNotAllocated) {
  // One Worker (with its own scratch bitsets) is allocated per thread; an
  // oversized request such as -1 cast to size_t must be clamped to usable
  // parallelism, not allocated literally.
  Fixture f(200, 6, 4, 25);
  BruteForceOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 3;
  opts.num_threads = std::numeric_limits<size_t>::max();
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  EXPECT_TRUE(result.stats.completed);
  EXPECT_EQ(result.best.size(), 3u);
}

TEST(BruteForceTest, CounterStatsInvariantSurvivesCountUncached) {
  // Every query through CubeCounter — cached Count or public CountUncached —
  // must be either a cache hit or dispatched to exactly one strategy:
  // queries == cache_hits + bitset + posting + naive. CountUncached
  // historically forgot to bump `queries`, breaking the identity.
  Fixture f(300, 6, 4, 24);
  const std::vector<DimRange> cube = {{0, 1}, {2, 0}};
  f.counter.Count(cube);                // miss: dispatched
  f.counter.Count(cube);                // hit
  f.counter.CountUncached(cube, CountingStrategy::kBitset);
  f.counter.CountUncached(cube, CountingStrategy::kPostingList);
  f.counter.CountUncached(cube, CountingStrategy::kNaive);
  const CubeCounter::Stats stats = f.counter.stats();
  EXPECT_EQ(stats.queries, 5u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.queries, stats.cache_hits + stats.bitset_counts +
                               stats.posting_counts + stats.naive_counts);
}

TEST(BruteForceTest, KEqualsOneScansSingleRanges) {
  Fixture f(100, 3, 4, 7);
  BruteForceOptions opts;
  opts.target_dim = 1;
  opts.num_projections = 12;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  EXPECT_EQ(static_cast<double>(result.stats.cubes_evaluated), 12.0);
  EXPECT_EQ(result.best.size(), 12u);
}

TEST(BruteForceTest, KEqualsDimensionality) {
  Fixture f(50, 3, 2, 8);
  BruteForceOptions opts;
  opts.target_dim = 3;  // == d: exactly phi^d cubes
  opts.num_projections = 4;
  opts.prune_empty_subtrees = false;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  EXPECT_EQ(static_cast<double>(result.stats.cubes_evaluated), 8.0);
}

TEST(BruteForceTest, ParallelMatchesSerial) {
  Fixture f(500, 10, 4, 21);
  BruteForceOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 8;

  opts.num_threads = 1;
  const BruteForceResult serial = BruteForceSearch(f.objective, opts);
  opts.num_threads = 4;
  const BruteForceResult parallel = BruteForceSearch(f.objective, opts);

  EXPECT_TRUE(parallel.stats.completed);
  EXPECT_EQ(parallel.stats.cubes_evaluated, serial.stats.cubes_evaluated);
  ASSERT_EQ(parallel.best.size(), serial.best.size());
  for (size_t i = 0; i < serial.best.size(); ++i) {
    EXPECT_NEAR(parallel.best[i].sparsity, serial.best[i].sparsity, 1e-12);
    EXPECT_EQ(parallel.best[i].count, serial.best[i].count);
  }
}

TEST(BruteForceTest, ParallelRespectsTimeBudget) {
  Fixture f(2000, 24, 8, 22);
  BruteForceOptions opts;
  opts.target_dim = 4;
  opts.num_projections = 5;
  opts.num_threads = 4;
  opts.time_budget_seconds = 0.05;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  EXPECT_FALSE(result.stats.completed);
  EXPECT_LT(result.stats.seconds, 5.0);
}

TEST(BruteForceTest, ExactSparsityTiesResolveIdenticallyAcrossThreads) {
  // phi=2 over few points gives many cubes with identical counts — hence
  // bit-identical sparsity coefficients. The (sparsity, projection-key)
  // total order in BestSet must then pick the same winners no matter which
  // worker offered first.
  Fixture f(256, 8, 2, 11);
  BruteForceOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 12;

  opts.num_threads = 1;
  const BruteForceResult reference = BruteForceSearch(f.objective, opts);
  ASSERT_TRUE(reference.stats.completed);

  // The construction must actually produce ties inside the retained set,
  // otherwise this test exercises nothing.
  size_t tied_pairs = 0;
  for (size_t i = 1; i < reference.best.size(); ++i) {
    if (reference.best[i].sparsity == reference.best[i - 1].sparsity) {
      ++tied_pairs;
    }
  }
  ASSERT_GE(tied_pairs, 1u);

  for (size_t threads : {2u, 4u, 8u}) {
    opts.num_threads = threads;
    const BruteForceResult run = BruteForceSearch(f.objective, opts);
    ASSERT_EQ(run.best.size(), reference.best.size()) << threads;
    for (size_t i = 0; i < reference.best.size(); ++i) {
      EXPECT_EQ(run.best[i].projection, reference.best[i].projection)
          << "threads=" << threads << " entry=" << i;
      EXPECT_EQ(run.best[i].count, reference.best[i].count);
      EXPECT_EQ(run.best[i].sparsity, reference.best[i].sparsity);
    }
  }
}

TEST(BruteForceTest, DeadlineExpiryOnInjectedClockReturnsValidPartial) {
  // The clock advances a fixed step per read, so the deadline expires after
  // a deterministic number of polls — no wall-clock sleeps involved.
  Fixture f(300, 10, 4, 9);
  FakeClock clock(0.0, 0.1);
  BruteForceOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 5;
  opts.time_budget_seconds = 0.5;  // expires on the 5th poll
  opts.clock = &clock;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);

  EXPECT_FALSE(result.stats.completed);
  EXPECT_EQ(result.stats.stop_cause, StopCause::kDeadline);
  // Accounting invariants hold even on the abort path.
  EXPECT_EQ(result.stats.cubes_published, result.stats.cubes_evaluated);
  // Genuinely partial: the full space is C(10,3) * 4^3 = 7680 leaves.
  EXPECT_LT(result.stats.cubes_evaluated, 7680u);
  // What was found is still a valid, sorted best-so-far report.
  EXPECT_FALSE(result.best.empty());
  for (const ScoredProjection& s : result.best) {
    EXPECT_EQ(s.projection.Dimensionality(), 3u);
    EXPECT_GE(s.count, 1u);
  }
  for (size_t i = 1; i < result.best.size(); ++i) {
    EXPECT_LE(result.best[i - 1].sparsity, result.best[i].sparsity);
  }
}

TEST(BruteForceTest, PreCancelledTokenStopsBeforeAnyWork) {
  Fixture f(200, 8, 4, 10);
  StopToken token;
  token.RequestCancel();
  BruteForceOptions opts;
  opts.target_dim = 3;
  opts.num_projections = 5;
  opts.stop = &token;
  const BruteForceResult result = BruteForceSearch(f.objective, opts);
  EXPECT_FALSE(result.stats.completed);
  EXPECT_EQ(result.stats.stop_cause, StopCause::kCancelled);
  EXPECT_EQ(result.stats.cubes_evaluated, 0u);
  EXPECT_EQ(result.stats.cubes_published, 0u);
}

TEST(BruteForceSearchSpaceTest, PaperExample) {
  // Section 3: d=20, k=4, phi=10 gives ~7 * 10^7 possibilities.
  const double space = BruteForceSearchSpace(20, 4, 10);
  EXPECT_NEAR(space, 4845.0 * 1e4, 1e-6);
  EXPECT_GT(space, 4.0e7);
  EXPECT_LT(space, 8.0e7);
}

TEST(BruteForceSearchSpaceTest, SmallCases) {
  EXPECT_DOUBLE_EQ(BruteForceSearchSpace(3, 1, 2), 6.0);
  EXPECT_DOUBLE_EQ(BruteForceSearchSpace(3, 2, 2), 12.0);
  EXPECT_DOUBLE_EQ(BruteForceSearchSpace(4, 4, 3), 81.0);
}

TEST(BruteForceDeathTest, BadTargetDim) {
  Fixture f(10, 2, 2, 9);
  BruteForceOptions opts;
  opts.target_dim = 3;  // > d
  EXPECT_DEATH(BruteForceSearch(f.objective, opts), "target_dim");
}

}  // namespace
}  // namespace hido
