#include "core/genetic/selection.h"

#include <map>

#include <gtest/gtest.h>

namespace hido {
namespace {

Individual MakeIndividual(size_t dim, double sparsity) {
  Individual ind;
  ind.projection = Projection(10);
  ind.projection.Specify(dim, 0);
  ind.sparsity = sparsity;
  ind.count = 1;
  ind.feasible = true;
  return ind;
}

TEST(RankSelectionWeightsTest, PaperFormula) {
  // Weight of rank r (1-based) is p - r: best gets p-1, worst gets 0.
  const std::vector<double> w = RankSelectionWeights(4);
  EXPECT_EQ(w, (std::vector<double>{3.0, 2.0, 1.0, 0.0}));
}

TEST(RankRouletteSelectionTest, PreservesPopulationSize) {
  std::vector<Individual> population;
  for (size_t i = 0; i < 10; ++i) {
    population.push_back(MakeIndividual(i, -static_cast<double>(i)));
  }
  Rng rng(1);
  const std::vector<Individual> selected =
      RankRouletteSelection(population, rng);
  EXPECT_EQ(selected.size(), 10u);
}

TEST(RankRouletteSelectionTest, WorstNeverSelected) {
  // The paper's weights give the last rank weight 0.
  std::vector<Individual> population;
  for (size_t i = 0; i < 5; ++i) {
    population.push_back(MakeIndividual(i, -static_cast<double>(i)));
  }
  // Worst = sparsity 0 at dim 0.
  Rng rng(2);
  for (int round = 0; round < 50; ++round) {
    const std::vector<Individual> selected =
        RankRouletteSelection(population, rng);
    for (const Individual& ind : selected) {
      EXPECT_NE(ind.sparsity, 0.0);
    }
  }
}

TEST(RankRouletteSelectionTest, BiasTowardMostNegative) {
  std::vector<Individual> population;
  for (size_t i = 0; i < 10; ++i) {
    population.push_back(MakeIndividual(i, -static_cast<double>(i)));
  }
  Rng rng(3);
  std::map<double, int> counts;
  for (int round = 0; round < 400; ++round) {
    for (const Individual& ind : RankRouletteSelection(population, rng)) {
      counts[ind.sparsity] += 1;
    }
  }
  // Best (sparsity -9, rank 1, weight 9) should be picked ~9x as often as
  // rank 9 (weight 1).
  const double ratio = static_cast<double>(counts[-9.0]) /
                       static_cast<double>(counts[-1.0]);
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 13.0);
}

TEST(RankRouletteSelectionTest, InfeasibleRankLast) {
  std::vector<Individual> population;
  population.push_back(MakeIndividual(0, -1.0));
  Individual infeasible;
  infeasible.projection = Projection(10);
  infeasible.feasible = false;  // sparsity stays +inf
  population.push_back(infeasible);
  Rng rng(4);
  for (int round = 0; round < 50; ++round) {
    for (const Individual& ind :
         RankRouletteSelection(population, rng)) {
      EXPECT_TRUE(ind.feasible);  // weight 0 for the infeasible string
    }
  }
}

TEST(RankRouletteSelectionDeathTest, TooSmallPopulation) {
  std::vector<Individual> population;
  population.push_back(MakeIndividual(0, -1.0));
  Rng rng(5);
  EXPECT_DEATH(RankRouletteSelection(population, rng), "population");
}

}  // namespace
}  // namespace hido
