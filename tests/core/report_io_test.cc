#include "core/report_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace hido {
namespace {

OutlierReport MakeReport() {
  OutlierReport report;
  ScoredProjection a;
  a.projection = Projection(4);
  a.projection.Specify(1, 2);
  a.projection.Specify(3, 8);
  a.count = 1;
  a.sparsity = -4.25;
  report.projections.push_back(a);

  ScoredProjection b;
  b.projection = Projection(4);
  b.projection.Specify(0, 0);
  b.count = 3;
  b.sparsity = -2.5;
  report.projections.push_back(b);

  OutlierRecord record;
  record.row = 17;
  record.projection_ids = {0, 1};
  record.best_sparsity = -4.25;
  report.outliers.push_back(record);
  return report;
}

TEST(ReportIoTest, ProjectionsCsvFormat) {
  const std::string csv = ProjectionsToCsv(MakeReport());
  const std::vector<std::string> lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "index,projection,dimensionality,count,sparsity,conditions");
  // The paper's *3*9 example with 1-based condition cells.
  EXPECT_EQ(lines[1], "0,*3*9,2,1,-4.250000,1:3 3:9");
  EXPECT_EQ(lines[2], "1,1***,1,3,-2.500000,0:1");
}

TEST(ReportIoTest, OutliersCsvFormat) {
  const std::string csv = OutliersToCsv(MakeReport());
  const std::vector<std::string> lines = Split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0], "row,best_sparsity,num_projections,projection_ids");
  EXPECT_EQ(lines[1], "17,-4.250000,2,0 1");
}

TEST(ReportIoTest, EmptyReport) {
  const OutlierReport report;
  EXPECT_EQ(Split(ProjectionsToCsv(report), '\n').size(), 2u);  // header+""
  EXPECT_EQ(Split(OutliersToCsv(report), '\n').size(), 2u);
}

TEST(ReportIoTest, WriteReportCreatesBothFiles) {
  const std::string prefix = ::testing::TempDir() + "/hido_report";
  ASSERT_TRUE(WriteReport(MakeReport(), prefix).ok());
  for (const char* suffix : {".projections.csv", ".outliers.csv"}) {
    std::ifstream in(prefix + suffix);
    EXPECT_TRUE(in.good()) << suffix;
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_FALSE(buffer.str().empty());
    std::remove((prefix + suffix).c_str());
  }
}

TEST(ReportIoTest, WriteReportFailsOnBadPath) {
  EXPECT_FALSE(WriteReport(MakeReport(), "/nonexistent/dir/x").ok());
}

}  // namespace
}  // namespace hido
