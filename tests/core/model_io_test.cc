#include "core/model_io.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

DetectionResult DetectOnPlantedData(const GeneratedDataset& g) {
  DetectorConfig config;
  config.phi = 5;
  config.target_dim = 2;
  config.num_projections = 10;
  config.evolution.restarts = 6;
  config.seed = 3;
  return OutlierDetector(config).Detect(g.data);
}

GeneratedDataset MakeData() {
  SubspaceOutlierConfig config;
  config.num_points = 400;
  config.num_dims = 12;
  config.num_groups = 3;
  config.num_outliers = 4;
  config.seed = 6;
  return GenerateSubspaceOutliers(config);
}

TEST(ModelIoTest, SerializeParseRoundTrip) {
  const GeneratedDataset g = MakeData();
  const DetectionResult result = DetectOnPlantedData(g);
  const SparseModel model = MakeModel(result, g.data);

  const Result<SparseModel> restored =
      ParseModel(SerializeModel(model));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const SparseModel& back = restored.value();

  EXPECT_EQ(back.num_points, model.num_points);
  EXPECT_EQ(back.quantizer.num_cols(), model.quantizer.num_cols());
  EXPECT_EQ(back.quantizer.num_ranges(), model.quantizer.num_ranges());
  EXPECT_EQ(back.column_names, model.column_names);
  ASSERT_EQ(back.projections.size(), model.projections.size());
  for (size_t i = 0; i < model.projections.size(); ++i) {
    EXPECT_EQ(back.projections[i].projection,
              model.projections[i].projection);
    EXPECT_EQ(back.projections[i].count, model.projections[i].count);
    EXPECT_DOUBLE_EQ(back.projections[i].sparsity,
                     model.projections[i].sparsity);
  }
  // Cuts round-trip exactly (%.17g).
  for (size_t c = 0; c < model.quantizer.num_cols(); ++c) {
    EXPECT_EQ(back.quantizer.Cuts(c), model.quantizer.Cuts(c)) << c;
  }
}

TEST(ModelIoTest, RestoredModelScoresIdentically) {
  const GeneratedDataset g = MakeData();
  const DetectionResult result = DetectOnPlantedData(g);
  const SparseModel model = MakeModel(result, g.data);
  const Result<SparseModel> restored = ParseModel(SerializeModel(model));
  ASSERT_TRUE(restored.ok());

  for (size_t row = 0; row < g.data.num_rows(); row += 13) {
    const std::vector<double> values = g.data.Row(row);
    const PointScore a = model.Score(values);
    const PointScore b = restored.value().Score(values);
    EXPECT_DOUBLE_EQ(a.sparsity_score, b.sparsity_score) << row;
    EXPECT_EQ(a.covering_projections, b.covering_projections) << row;
    // And both agree with the in-grid scorer.
    const PointScore c =
        ScoreNewPoint(result.grid, result.report.projections, values);
    EXPECT_DOUBLE_EQ(a.sparsity_score, c.sparsity_score) << row;
    EXPECT_EQ(a.covering_projections, c.covering_projections) << row;
  }
}

TEST(ModelIoTest, PlantedAnomalyStillAlertsAfterReload) {
  const GeneratedDataset g = MakeData();
  const DetectionResult result = DetectOnPlantedData(g);
  const Result<SparseModel> model =
      ParseModel(SerializeModel(MakeModel(result, g.data)));
  ASSERT_TRUE(model.ok());
  size_t alerts = 0;
  for (size_t row : g.outlier_rows) {
    alerts +=
        model.value().Score(g.data.Row(row)).covering_projections > 0 ? 1
                                                                      : 0;
  }
  EXPECT_GT(alerts, 0u);
}

TEST(ModelIoTest, FileRoundTrip) {
  const GeneratedDataset g = MakeData();
  const DetectionResult result = DetectOnPlantedData(g);
  const SparseModel model = MakeModel(result, g.data);
  const std::string path = ::testing::TempDir() + "/hido_model_test.hido";
  ASSERT_TRUE(SaveModel(model, path).ok());
  const Result<SparseModel> loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().projections.size(), model.projections.size());
  std::remove(path.c_str());
}

TEST(ModelIoTest, ColumnNamesWithSpacesSurvive) {
  const GeneratedDataset g = MakeData();
  Dataset named = g.data;
  named.SetColumnName(0, "pupil teacher ratio");
  const DetectionResult result = DetectOnPlantedData(g);
  const Result<SparseModel> restored =
      ParseModel(SerializeModel(MakeModel(result, named)));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().column_names[0], "pupil teacher ratio");
}

TEST(ModelIoTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseModel("").ok());
  EXPECT_FALSE(ParseModel("garbage v1").ok());
  EXPECT_FALSE(ParseModel("hido-model v999").ok());

  const GeneratedDataset g = MakeData();
  const DetectionResult result = DetectOnPlantedData(g);
  std::string text = SerializeModel(MakeModel(result, g.data));
  // Corrupt a projection condition to an out-of-range cell.
  const size_t pos = text.find("projection ");
  ASSERT_NE(pos, std::string::npos);
  std::string corrupted = text;
  corrupted.replace(pos, 11, "projection x");
  EXPECT_FALSE(ParseModel(corrupted).ok());

  // Truncate mid-file.
  EXPECT_FALSE(ParseModel(text.substr(0, text.size() / 2)).ok());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadModel("/no/such/model.hido").ok());
}

TEST(ModelIoDeathTest, WrongWidthScoreAborts) {
  const GeneratedDataset g = MakeData();
  const DetectionResult result = DetectOnPlantedData(g);
  const SparseModel model = MakeModel(result, g.data);
  EXPECT_DEATH(model.Score({1.0}), "coordinates");
}

}  // namespace
}  // namespace hido
