#include "core/scoring.h"

#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators/synthetic.h"
#include "grid/cube_counter.h"
#include "grid/sparsity.h"

namespace hido {
namespace {

TEST(ScoringTest, UncoveredPointsScoreZero) {
  const Dataset ds = GenerateUniform(100, 4, 1);
  GridModel::Options gopts;
  gopts.phi = 4;
  const GridModel grid = GridModel::Build(ds, gopts);
  const std::vector<PointScore> scores = ScoreAllPoints(grid, {});
  ASSERT_EQ(scores.size(), 100u);
  for (const PointScore& s : scores) {
    EXPECT_EQ(s.sparsity_score, 0.0);
    EXPECT_EQ(s.covering_projections, 0u);
  }
}

TEST(ScoringTest, CoveredPointsGetBestSparsityAndCount) {
  Dataset ds(2);
  for (int i = 0; i < 30; ++i) ds.AppendRow({0.1, 0.1});
  ds.AppendRow({0.9, 0.9});  // row 30
  GridModel::Options gopts;
  gopts.phi = 2;
  gopts.mode = BinningMode::kEquiWidth;
  const GridModel grid = GridModel::Build(ds, gopts);

  std::vector<ScoredProjection> projections;
  // Two cubes both covering row 30 with different sparsities.
  for (double sparsity : {-2.0, -5.0}) {
    ScoredProjection s;
    s.projection = Projection(2);
    s.projection.Specify(0, 1);
    if (sparsity == -5.0) s.projection.Specify(1, 1);
    s.count = 1;
    s.sparsity = sparsity;
    projections.push_back(s);
  }
  const std::vector<PointScore> scores = ScoreAllPoints(grid, projections);
  EXPECT_DOUBLE_EQ(scores[30].sparsity_score, -5.0);
  EXPECT_EQ(scores[30].covering_projections, 2u);
  EXPECT_EQ(scores[0].covering_projections, 0u);
}

TEST(ScoringTest, RankRowsOrdersStrongestFirst) {
  std::vector<PointScore> scores(4);
  for (size_t i = 0; i < 4; ++i) scores[i].row = i;
  scores[1].sparsity_score = -3.0;
  scores[1].covering_projections = 1;
  scores[2].sparsity_score = -3.0;
  scores[2].covering_projections = 2;  // tie broken by more coverage
  scores[3].sparsity_score = -5.0;
  scores[3].covering_projections = 1;
  const std::vector<size_t> order = RankRows(scores);
  EXPECT_EQ(order, (std::vector<size_t>{3, 2, 1, 0}));
}

TEST(ScoringTest, PlantedAnomaliesRankFirst) {
  SubspaceOutlierConfig config;
  config.num_points = 500;
  config.num_dims = 12;
  config.num_groups = 3;
  config.num_outliers = 4;
  config.seed = 3;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  GridModel::Options gopts;
  gopts.phi = 5;
  const GridModel grid = GridModel::Build(g.data, gopts);
  CubeCounter counter(grid);
  const SparsityModel model(500, 5);

  // Build the planted cubes directly (perfect search).
  std::vector<ScoredProjection> projections;
  for (size_t o = 0; o < g.outlier_rows.size(); ++o) {
    const size_t row = g.outlier_rows[o];
    ScoredProjection s;
    s.projection = Projection(12);
    for (size_t d : g.outlier_dims[o]) {
      s.projection.Specify(d, grid.Cell(row, d));
    }
    s.count = counter.Count(s.projection.Conditions());
    s.sparsity = model.Coefficient(s.count, 2);
    projections.push_back(s);
  }
  const std::vector<size_t> order =
      RankRows(ScoreAllPoints(grid, projections));
  // The planted rows occupy the top ranks (up to permutation).
  std::set<size_t> top(order.begin(),
                       order.begin() + static_cast<ptrdiff_t>(
                                           g.outlier_rows.size()));
  for (size_t row : g.outlier_rows) {
    EXPECT_TRUE(top.contains(row)) << row;
  }
}

TEST(ScoreNewPointTest, InSampleEquivalence) {
  // Scoring a training row as a "new" point must match ScoreAllPoints.
  SubspaceOutlierConfig config;
  config.num_points = 300;
  config.num_dims = 10;
  config.num_groups = 2;
  config.num_outliers = 3;
  config.seed = 8;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  GridModel::Options gopts;
  gopts.phi = 5;
  const GridModel grid = GridModel::Build(g.data, gopts);
  CubeCounter counter(grid);
  const SparsityModel model(300, 5);

  std::vector<ScoredProjection> projections;
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    ScoredProjection s;
    s.projection = Projection::Random(10, 2, 5, rng);
    s.count = counter.Count(s.projection.Conditions());
    s.sparsity = model.Coefficient(s.count, 2);
    projections.push_back(s);
  }
  const std::vector<PointScore> all = ScoreAllPoints(grid, projections);
  for (size_t row = 0; row < 300; row += 17) {
    const PointScore fresh =
        ScoreNewPoint(grid, projections, g.data.Row(row));
    EXPECT_DOUBLE_EQ(fresh.sparsity_score, all[row].sparsity_score) << row;
    EXPECT_EQ(fresh.covering_projections, all[row].covering_projections)
        << row;
  }
}

TEST(ScoreNewPointTest, MissingCoordinateNeverMatches) {
  const Dataset ds = GenerateUniform(100, 3, 2);
  GridModel::Options gopts;
  gopts.phi = 2;
  const GridModel grid = GridModel::Build(ds, gopts);
  ScoredProjection s;
  s.projection = Projection(3);
  s.projection.Specify(1, 0);
  s.count = 1;
  s.sparsity = -3.0;

  std::vector<double> values = {0.5, 0.0, 0.5};  // cell 0 on dim 1
  EXPECT_EQ(ScoreNewPoint(grid, {s}, values).covering_projections, 1u);
  values[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ScoreNewPoint(grid, {s}, values).covering_projections, 0u);
}

TEST(ScoreNewPointDeathTest, WrongWidthAborts) {
  const Dataset ds = GenerateUniform(10, 3, 3);
  GridModel::Options gopts;
  gopts.phi = 2;
  const GridModel grid = GridModel::Build(ds, gopts);
  EXPECT_DEATH(ScoreNewPoint(grid, {}, {0.5}), "coordinates");
}

}  // namespace
}  // namespace hido
