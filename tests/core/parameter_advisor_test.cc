#include "core/parameter_advisor.h"

#include <gtest/gtest.h>

#include "grid/sparsity.h"

namespace hido {
namespace {

TEST(ParameterAdvisorTest, ExplicitPhiRespected) {
  const ParameterAdvice advice = AdviseParameters(10000, 50, -3.0, 10);
  EXPECT_EQ(advice.phi, 10u);
  EXPECT_EQ(advice.k, 3u);  // log10(10000/9 + 1) = 3.04 -> 3
}

TEST(ParameterAdvisorTest, AutoPhiCapsAtTen) {
  EXPECT_EQ(AdviseParameters(100000, 50).phi, 10u);
}

TEST(ParameterAdvisorTest, AutoPhiShrinksForSmallData) {
  const ParameterAdvice advice = AdviseParameters(200, 50);
  EXPECT_LT(advice.phi, 10u);
  EXPECT_GE(advice.phi, 3u);
}

TEST(ParameterAdvisorTest, KClampedToDimensionality) {
  const ParameterAdvice advice = AdviseParameters(1000000, 2, -3.0, 10);
  EXPECT_EQ(advice.k, 2u);
}

TEST(ParameterAdvisorTest, KAtLeastOne) {
  const ParameterAdvice advice = AdviseParameters(5, 10, -3.0, 10);
  EXPECT_EQ(advice.k, 1u);
}

TEST(ParameterAdvisorTest, DerivedQuantitiesConsistent) {
  const ParameterAdvice advice = AdviseParameters(10000, 50, -3.0, 10);
  const SparsityModel model(10000, advice.phi);
  EXPECT_DOUBLE_EQ(advice.empty_cube_sparsity,
                   model.EmptyCubeCoefficient(advice.k));
  EXPECT_DOUBLE_EQ(advice.expected_points_per_cube,
                   model.ExpectedCount(advice.k));
  // The defining property of k*: empty cubes at k* are at least as
  // surprising as the target s.
  EXPECT_LE(advice.empty_cube_sparsity, -3.0);
}

TEST(ParameterAdvisorTest, StricterTargetLowersK) {
  const size_t k_loose = AdviseParameters(100000, 50, -2.0, 10).k;
  const size_t k_strict = AdviseParameters(100000, 50, -5.0, 10).k;
  EXPECT_GE(k_loose, k_strict);
}

TEST(ParameterAdvisorDeathTest, InvalidInputs) {
  EXPECT_DEATH(AdviseParameters(0, 5), "num_points");
  EXPECT_DEATH(AdviseParameters(10, 0), "num_dims");
  EXPECT_DEATH(AdviseParameters(10, 5, 1.0), "negative");
  EXPECT_DEATH(AdviseParameters(10, 5, -3.0, 1), "phi");
}

}  // namespace
}  // namespace hido
