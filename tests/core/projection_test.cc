#include "core/projection.h"

#include <set>

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(ProjectionTest, StartsAllDontCare) {
  const Projection p(5);
  EXPECT_EQ(p.num_dims(), 5u);
  EXPECT_EQ(p.Dimensionality(), 0u);
  for (size_t d = 0; d < 5; ++d) EXPECT_FALSE(p.IsSpecified(d));
  EXPECT_TRUE(p.Conditions().empty());
}

TEST(ProjectionTest, SpecifyUnspecifyMaintainsDimensionality) {
  Projection p(4);
  p.Specify(1, 2);
  p.Specify(3, 8);
  EXPECT_EQ(p.Dimensionality(), 2u);
  EXPECT_EQ(p.CellAt(1), 2u);
  EXPECT_EQ(p.CellAt(3), 8u);
  p.Specify(1, 5);  // overwrite does not change dimensionality
  EXPECT_EQ(p.Dimensionality(), 2u);
  EXPECT_EQ(p.CellAt(1), 5u);
  p.Unspecify(1);
  EXPECT_EQ(p.Dimensionality(), 1u);
  p.Unspecify(1);  // idempotent
  EXPECT_EQ(p.Dimensionality(), 1u);
}

TEST(ProjectionTest, ConditionsAscendingByDim) {
  Projection p(6);
  p.Specify(4, 1);
  p.Specify(0, 3);
  p.Specify(2, 0);
  const std::vector<DimRange> conditions = p.Conditions();
  ASSERT_EQ(conditions.size(), 3u);
  EXPECT_EQ(conditions[0].dim, 0u);
  EXPECT_EQ(conditions[0].cell, 3u);
  EXPECT_EQ(conditions[1].dim, 2u);
  EXPECT_EQ(conditions[2].dim, 4u);
  EXPECT_EQ(p.SpecifiedDims(), (std::vector<size_t>{0, 2, 4}));
}

TEST(ProjectionTest, PaperStyleToString) {
  // The paper's example: *3*9 (1-based cells) in 4 dimensions.
  Projection p(4);
  p.Specify(1, 2);  // 0-based cell 2 prints as 3
  p.Specify(3, 8);  // prints as 9
  EXPECT_EQ(p.ToString(), "*3*9");
}

TEST(ProjectionTest, ToStringMultiDigitCells) {
  Projection p(3);
  p.Specify(0, 11);  // prints as 12
  EXPECT_EQ(p.ToString(), "12.*.*");
}

TEST(ProjectionTest, RandomHasExactDimensionality) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const Projection p = Projection::Random(20, 4, 10, rng);
    EXPECT_EQ(p.num_dims(), 20u);
    EXPECT_EQ(p.Dimensionality(), 4u);
    for (const DimRange& c : p.Conditions()) {
      EXPECT_LT(c.cell, 10u);
    }
  }
}

TEST(ProjectionTest, RandomCoversAllDimensionsEventually) {
  Rng rng(23);
  std::set<size_t> seen;
  for (int trial = 0; trial < 300; ++trial) {
    for (size_t d : Projection::Random(8, 2, 5, rng).SpecifiedDims()) {
      seen.insert(d);
    }
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ProjectionTest, FromConditionsRoundTrip) {
  const std::vector<DimRange> conditions = {{1, 4}, {5, 0}};
  const Projection p = Projection::FromConditions(8, conditions);
  EXPECT_EQ(p.Conditions(), conditions);
}

TEST(ProjectionTest, EqualityAndPackedKey) {
  Projection a(5);
  a.Specify(2, 3);
  Projection b(5);
  b.Specify(2, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.PackedKey(), b.PackedKey());
  b.Specify(4, 0);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.PackedKey(), b.PackedKey());
}

TEST(ProjectionTest, PackedKeyDistinguishesCellAndDim) {
  Projection a(4);
  a.Specify(0, 1);
  Projection b(4);
  b.Specify(1, 0);
  EXPECT_NE(a.PackedKey(), b.PackedKey());
}

TEST(ProjectionDeathTest, InvalidOperations) {
  Projection p(3);
  EXPECT_DEATH(p.Specify(3, 0), "dim");
  EXPECT_DEATH(p.Specify(0, Projection::kDontCare), "cell");
  const std::vector<DimRange> dup = {{1, 0}, {1, 2}};
  EXPECT_DEATH(Projection::FromConditions(3, dup), "duplicate");
}

}  // namespace
}  // namespace hido
