#include "core/genetic/crossover.h"

#include <cmath>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

struct Fixture {
  Fixture(size_t n = 400, size_t d = 8, size_t phi = 4, uint64_t seed = 1)
      : grid(GridModel::Build(GenerateUniform(n, d, seed),
                              [&] {
                                GridModel::Options o;
                                o.phi = phi;
                                return o;
                              }())),
        counter(grid),
        objective(counter) {}
  GridModel grid;
  CubeCounter counter;
  SparsityObjective objective;
};

TEST(TwoPointCrossoverTest, ChildrenExchangeSegments) {
  Projection a(4);
  a.Specify(0, 1);
  a.Specify(1, 2);
  Projection b(4);
  b.Specify(2, 3);
  b.Specify(3, 0);
  Rng rng(1);
  const auto [c1, c2] = TwoPointCrossover(a, b, rng);
  // Every position of c1 comes from a (left of cut) or b (right of cut);
  // jointly the children hold exactly the parents' material.
  for (size_t pos = 0; pos < 4; ++pos) {
    const bool a_spec = a.IsSpecified(pos);
    const bool b_spec = b.IsSpecified(pos);
    EXPECT_EQ(c1.IsSpecified(pos) || c2.IsSpecified(pos), a_spec || b_spec);
    EXPECT_EQ(c1.IsSpecified(pos) && c2.IsSpecified(pos), a_spec && b_spec);
  }
  EXPECT_EQ(c1.Dimensionality() + c2.Dimensionality(), 4u);
}

TEST(TwoPointCrossoverTest, CanProduceInfeasibleDimensionality) {
  // The paper's example: crossing 3*2*1 and 1*33* after position 4 yields a
  // 2-dimensional and a 4-dimensional child.
  Projection a(5);
  a.Specify(0, 2);
  a.Specify(2, 1);
  a.Specify(4, 0);
  Projection b(5);
  b.Specify(0, 0);
  b.Specify(2, 2);
  b.Specify(3, 2);
  Rng rng(2);
  bool saw_infeasible = false;
  for (int trial = 0; trial < 100; ++trial) {
    const auto [c1, c2] = TwoPointCrossover(a, b, rng);
    if (c1.Dimensionality() != 3 || c2.Dimensionality() != 3) {
      saw_infeasible = true;
    }
  }
  EXPECT_TRUE(saw_infeasible);
}

TEST(OptimizedCrossoverTest, BothChildrenAlwaysKDimensional) {
  Fixture f;
  Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t k = 2 + rng.UniformIndex(3);
    const Projection a = Projection::Random(8, k, 4, rng);
    const Projection b = Projection::Random(8, k, 4, rng);
    const auto [s, sp] = OptimizedCrossover(a, b, k, f.objective);
    EXPECT_EQ(s.Dimensionality(), k) << "trial " << trial;
    EXPECT_EQ(sp.Dimensionality(), k) << "trial " << trial;
  }
}

TEST(OptimizedCrossoverTest, ChildrenOnlyUseParentMaterial) {
  Fixture f;
  Rng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    const Projection a = Projection::Random(8, 3, 4, rng);
    const Projection b = Projection::Random(8, 3, 4, rng);
    const auto [s, sp] = OptimizedCrossover(a, b, 3, f.objective);
    for (const Projection* child : {&s, &sp}) {
      for (size_t pos = 0; pos < 8; ++pos) {
        if (!child->IsSpecified(pos)) continue;
        const uint32_t cell = child->CellAt(pos);
        const bool from_a = a.IsSpecified(pos) && a.CellAt(pos) == cell;
        const bool from_b = b.IsSpecified(pos) && b.CellAt(pos) == cell;
        EXPECT_TRUE(from_a || from_b)
            << "pos " << pos << " cell " << cell << " trial " << trial;
      }
    }
  }
}

TEST(OptimizedCrossoverTest, ComplementaryDerivation) {
  // At every position, the two children derive from opposite parents.
  Fixture f;
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const Projection a = Projection::Random(8, 3, 4, rng);
    const Projection b = Projection::Random(8, 3, 4, rng);
    const auto [s, sp] = OptimizedCrossover(a, b, 3, f.objective);
    for (size_t pos = 0; pos < 8; ++pos) {
      const bool a_spec = a.IsSpecified(pos);
      const bool b_spec = b.IsSpecified(pos);
      if (!a_spec && !b_spec) {
        // Type I: both children have *.
        EXPECT_FALSE(s.IsSpecified(pos));
        EXPECT_FALSE(sp.IsSpecified(pos));
      } else if (a_spec != b_spec) {
        // Type III: exactly one child holds the value.
        EXPECT_NE(s.IsSpecified(pos), sp.IsSpecified(pos)) << pos;
      } else if (a.CellAt(pos) != b.CellAt(pos)) {
        // Disagreeing Type II: children take opposite parents.
        ASSERT_TRUE(s.IsSpecified(pos) && sp.IsSpecified(pos));
        const std::set<uint32_t> got = {s.CellAt(pos), sp.CellAt(pos)};
        const std::set<uint32_t> want = {a.CellAt(pos), b.CellAt(pos)};
        EXPECT_EQ(got, want) << pos;
      }
    }
  }
}

TEST(OptimizedCrossoverTest, IdenticalParentsReproduceThemselves) {
  Fixture f;
  Rng rng(6);
  const Projection a = Projection::Random(8, 3, 4, rng);
  const auto [s, sp] = OptimizedCrossover(a, a, 3, f.objective);
  EXPECT_EQ(s, a);
  EXPECT_EQ(sp, a);
}

TEST(OptimizedCrossoverTest, FirstChildAtLeastAsGoodAsTypeIIChoices) {
  // With disjoint dimension sets (k' = 0), the first child is the greedy
  // pick over all 2k Type III candidates; its sparsity should be <= the
  // sparsity of either parent's own dimension set extension... at minimum
  // it must be one of the valid k-subsets of the union.
  Fixture f;
  Projection a(8);
  a.Specify(0, 1);
  a.Specify(1, 2);
  Projection b(8);
  b.Specify(2, 0);
  b.Specify(3, 3);
  const auto [s, sp] = OptimizedCrossover(a, b, 2, f.objective);
  EXPECT_EQ(s.Dimensionality(), 2u);
  EXPECT_EQ(sp.Dimensionality(), 2u);
  // The union of the children's conditions equals the union of parents'.
  std::set<std::pair<size_t, uint32_t>> child_material;
  for (const Projection* child : {&s, &sp}) {
    for (const DimRange& c : child->Conditions()) {
      child_material.insert({c.dim, c.cell});
    }
  }
  EXPECT_EQ(child_material.size(), 4u);
}

TEST(OptimizedCrossoverTest, GreedyPicksSparserExtension) {
  // Construct a case where one Type III candidate leads to an empty cube
  // (sparser) and another to a full cube; greedy must take the empty one
  // for the first child.
  Dataset ds(3);
  // Points concentrated so that cell (0,0)+(1,0) is populated but
  // (0,0)+(2,1) is empty.
  for (int i = 0; i < 50; ++i) ds.AppendRow({0.1, 0.1, 0.1});
  for (int i = 0; i < 50; ++i) ds.AppendRow({0.9, 0.9, 0.9});
  GridModel::Options gopts;
  gopts.phi = 2;
  gopts.mode = BinningMode::kEquiWidth;  // deterministic cells under ties
  const GridModel grid = GridModel::Build(ds, gopts);
  CubeCounter counter(grid);
  SparsityObjective objective(counter);

  Projection a(3);
  a.Specify(0, 0);
  a.Specify(1, 0);  // (low, low): 50 points
  Projection b(3);
  b.Specify(0, 0);
  b.Specify(2, 1);  // (low, high): empty
  // Type II: dim 0 agrees. Type III: dim 1 (from a), dim 2 (from b).
  const auto [s, sp] = OptimizedCrossover(a, b, 2, objective);
  // The sparser child is (0=low, 2=high), count 0.
  EXPECT_EQ(objective.Evaluate(s).count, 0u);
  EXPECT_EQ(s.CellAt(0), 0u);
  ASSERT_TRUE(s.IsSpecified(2));
  EXPECT_EQ(s.CellAt(2), 1u);
  // The complement takes dim 1 instead.
  ASSERT_TRUE(sp.IsSpecified(1));
  EXPECT_FALSE(sp.IsSpecified(2));
}

TEST(OptimizedCrossoverTest, TypeIIEnumerationFindsBestCombination) {
  // Parents disagree on both shared dims; of the four combinations one is
  // empty. The first child must select it.
  Dataset ds(2);
  for (int i = 0; i < 30; ++i) ds.AppendRow({0.1, 0.1});  // (0,0)
  for (int i = 0; i < 30; ++i) ds.AppendRow({0.9, 0.9});  // (1,1)
  for (int i = 0; i < 30; ++i) ds.AppendRow({0.1, 0.9});  // (0,1)
  // (1,0) left empty.
  GridModel::Options gopts;
  gopts.phi = 2;
  gopts.mode = BinningMode::kEquiWidth;  // deterministic cells under ties
  const GridModel grid = GridModel::Build(ds, gopts);
  CubeCounter counter(grid);
  SparsityObjective objective(counter);

  Projection a(2);
  a.Specify(0, 0);
  a.Specify(1, 0);
  Projection b(2);
  b.Specify(0, 1);
  b.Specify(1, 1);
  const auto [s, sp] = OptimizedCrossover(a, b, 2, objective);
  EXPECT_EQ(s.CellAt(0), 1u);
  EXPECT_EQ(s.CellAt(1), 0u);  // the empty combination
  // Complement takes the opposite parent at each position: (0, 1).
  EXPECT_EQ(sp.CellAt(0), 0u);
  EXPECT_EQ(sp.CellAt(1), 1u);
}

TEST(CrossoverPopulationTest, OptimizedKeepsPopulationFeasible) {
  Fixture f;
  Rng rng(7);
  std::vector<Individual> population(10);
  for (Individual& ind : population) {
    ind.projection = Projection::Random(8, 3, 4, rng);
    EvaluateIndividual(ind, 3, f.objective);
  }
  CrossoverPopulation(population, CrossoverKind::kOptimized, 3, f.objective,
                      rng);
  for (const Individual& ind : population) {
    EXPECT_TRUE(ind.feasible);
    EXPECT_EQ(ind.projection.Dimensionality(), 3u);
  }
}

TEST(CrossoverPopulationTest, OddPopulationLastUntouchedCount) {
  Fixture f;
  Rng rng(8);
  std::vector<Individual> population(7);
  for (Individual& ind : population) {
    ind.projection = Projection::Random(8, 2, 4, rng);
    EvaluateIndividual(ind, 2, f.objective);
  }
  CrossoverPopulation(population, CrossoverKind::kOptimized, 2, f.objective,
                      rng);
  EXPECT_EQ(population.size(), 7u);
}

TEST(CrossoverPopulationTest, TwoPointEvaluatesInfeasibleAsInfinite) {
  Fixture f;
  Rng rng(9);
  std::vector<Individual> population(20);
  for (Individual& ind : population) {
    ind.projection = Projection::Random(8, 3, 4, rng);
    EvaluateIndividual(ind, 3, f.objective);
  }
  CrossoverPopulation(population, CrossoverKind::kTwoPoint, 3, f.objective,
                      rng);
  for (const Individual& ind : population) {
    if (ind.projection.Dimensionality() != 3) {
      EXPECT_FALSE(ind.feasible);
      EXPECT_TRUE(std::isinf(ind.sparsity));
    } else {
      EXPECT_TRUE(ind.feasible);
    }
  }
}

TEST(OptimizedCrossoverDeathTest, WrongDimensionalityParents) {
  Fixture f;
  Rng rng(10);
  const Projection a = Projection::Random(8, 2, 4, rng);
  const Projection b = Projection::Random(8, 3, 4, rng);
  EXPECT_DEATH(OptimizedCrossover(a, b, 3, f.objective), "k-dimensional");
}

}  // namespace
}  // namespace hido
