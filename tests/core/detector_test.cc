#include "core/detector.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"
#include "eval/metrics.h"

namespace hido {
namespace {

TEST(DetectorTest, DefaultsProduceAReport) {
  SubspaceOutlierConfig config;
  config.num_points = 400;
  config.num_dims = 15;
  config.seed = 1;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  const OutlierDetector detector;
  const DetectionResult result = detector.Detect(g.data);
  EXPECT_GT(result.phi, 0u);
  EXPECT_GT(result.target_dim, 0u);
  EXPECT_LE(result.report.projections.size(), 20u);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_EQ(result.grid.num_points(), 400u);
}

TEST(DetectorTest, RecoversPlantedOutliers) {
  SubspaceOutlierConfig config;
  config.num_points = 600;
  config.num_dims = 16;
  config.num_groups = 5;
  config.num_outliers = 6;
  config.outlier_subspace_dims = 2;
  config.seed = 7;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);

  DetectorConfig dconfig;
  dconfig.target_dim = 2;
  dconfig.phi = 5;  // aligned with the generator's 5 joint modes
  dconfig.num_projections = 25;
  dconfig.evolution.population_size = 80;
  dconfig.evolution.max_generations = 40;
  dconfig.evolution.restarts = 8;
  dconfig.evolution.mutation.p1 = 0.5;
  dconfig.evolution.mutation.p2 = 0.5;
  dconfig.seed = 3;
  const OutlierDetector detector(dconfig);
  const DetectionResult result = detector.Detect(g.data);

  std::vector<size_t> flagged;
  for (const OutlierRecord& o : result.report.outliers) {
    flagged.push_back(o.row);
  }
  // The planted anomalies should be strongly over-represented.
  const double recall = RecallOfPlanted(flagged, g.outlier_rows);
  EXPECT_GE(recall, 0.5) << "flagged " << flagged.size() << " rows";
}

TEST(DetectorTest, BruteForceAlgorithmOnSmallData) {
  SubspaceOutlierConfig config;
  config.num_points = 200;
  config.num_dims = 8;
  config.seed = 9;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);

  DetectorConfig dconfig;
  dconfig.algorithm = SearchAlgorithm::kBruteForce;
  dconfig.target_dim = 2;
  dconfig.phi = 5;
  const OutlierDetector detector(dconfig);
  const DetectionResult result = detector.Detect(g.data);
  EXPECT_EQ(result.algorithm, SearchAlgorithm::kBruteForce);
  EXPECT_TRUE(result.brute_force_stats.completed);
  EXPECT_GT(result.brute_force_stats.cubes_evaluated, 0u);
  EXPECT_FALSE(result.report.projections.empty());
}

TEST(DetectorTest, BruteForceAndEvolutionAgreeOnOptimum) {
  const Dataset data = GenerateUniform(300, 6, 11);
  DetectorConfig dconfig;
  dconfig.target_dim = 2;
  dconfig.phi = 4;
  dconfig.num_projections = 1;
  dconfig.evolution.population_size = 60;
  dconfig.evolution.max_generations = 80;
  dconfig.seed = 5;

  dconfig.algorithm = SearchAlgorithm::kBruteForce;
  const DetectionResult brute = OutlierDetector(dconfig).Detect(data);
  dconfig.algorithm = SearchAlgorithm::kEvolutionary;
  const DetectionResult evo = OutlierDetector(dconfig).Detect(data);

  ASSERT_FALSE(brute.report.projections.empty());
  ASSERT_FALSE(evo.report.projections.empty());
  EXPECT_NEAR(evo.report.projections[0].sparsity,
              brute.report.projections[0].sparsity, 1e-9);
}

TEST(DetectorTest, AutoParametersFollowAdvisor) {
  const Dataset data = GenerateUniform(1000, 12, 13);
  const OutlierDetector detector;  // phi and k automatic
  const DetectionResult result = detector.Detect(data);
  EXPECT_EQ(result.phi, 10u);       // 1000/50 = 20 -> capped at 10
  EXPECT_EQ(result.target_dim, 2u); // log10(1000/9+1) ~ 2.05 -> 2
}

TEST(DetectorTest, ExplicitParametersOverrideAdvisor) {
  const Dataset data = GenerateUniform(500, 10, 15);
  DetectorConfig dconfig;
  dconfig.phi = 4;
  dconfig.target_dim = 3;
  const DetectionResult result = OutlierDetector(dconfig).Detect(data);
  EXPECT_EQ(result.phi, 4u);
  EXPECT_EQ(result.target_dim, 3u);
}

TEST(DetectorTest, WorksWithMissingValues) {
  SubspaceOutlierConfig config;
  config.num_points = 300;
  config.num_dims = 10;
  config.missing_fraction = 0.05;
  config.seed = 17;
  const GeneratedDataset g = GenerateSubspaceOutliers(config);
  ASSERT_TRUE(g.data.HasMissing());
  const OutlierDetector detector;
  const DetectionResult result = detector.Detect(g.data);
  EXPECT_FALSE(result.report.projections.empty());
}

TEST(DetectorTest, PreCancelledTokenYieldsIncompleteResult) {
  const Dataset data = GenerateUniform(300, 8, 23);
  StopToken token;
  token.RequestCancel();
  DetectorConfig dconfig;
  dconfig.target_dim = 2;
  dconfig.phi = 5;
  dconfig.seed = 8;
  dconfig.stop = &token;
  const DetectionResult result = OutlierDetector(dconfig).Detect(data);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.stop_cause, StopCause::kCancelled);
}

TEST(DetectorTest, ReportedOutliersActuallyCoverProjections) {
  const Dataset data = GenerateUniform(400, 8, 19);
  DetectorConfig dconfig;
  dconfig.target_dim = 2;
  dconfig.phi = 5;
  dconfig.seed = 8;
  const DetectionResult result = OutlierDetector(dconfig).Detect(data);
  for (const OutlierRecord& record : result.report.outliers) {
    for (size_t pid : record.projection_ids) {
      const Projection& p = result.report.projections[pid].projection;
      EXPECT_TRUE(result.grid.Covers(record.row, p.Conditions()));
    }
  }
}

}  // namespace
}  // namespace hido
