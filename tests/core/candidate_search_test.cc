#include "core/candidate_search.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

struct Fixture {
  Fixture(size_t n, size_t d, size_t phi, uint64_t seed)
      : grid(GridModel::Build(GenerateUniform(n, d, seed),
                              [&] {
                                GridModel::Options o;
                                o.phi = phi;
                                return o;
                              }())),
        counter(grid),
        objective(counter) {}
  GridModel grid;
  CubeCounter counter;
  SparsityObjective objective;
};

TEST(CandidateSearchTest, LevelSizesMatchClosedForm) {
  Fixture f(100, 6, 3, 1);
  CandidateSearchOptions opts;
  opts.target_dim = 3;
  const CandidateSearchResult result = CandidateSetSearch(f.objective, opts);
  ASSERT_TRUE(result.stats.completed);
  ASSERT_EQ(result.stats.level_sizes.size(), 3u);
  // Level i holds every i-combination whose dims leave room for k-i more:
  // sum over valid prefixes; the final level is C(d,k)*phi^k exactly.
  EXPECT_EQ(result.stats.level_sizes[2],
            static_cast<uint64_t>(BruteForceSearchSpace(6, 3, 3)));
  EXPECT_GT(result.stats.peak_candidate_bytes, 0u);
}

TEST(CandidateSearchTest, AgreesWithDfsBruteForce) {
  // The paper's pseudocode and our DFS must report identical sets.
  Fixture f(400, 6, 4, 2);
  CandidateSearchOptions copts;
  copts.target_dim = 3;
  copts.num_projections = 10;
  const CandidateSearchResult materialized =
      CandidateSetSearch(f.objective, copts);
  ASSERT_TRUE(materialized.stats.completed);

  BruteForceOptions bopts;
  bopts.target_dim = 3;
  bopts.num_projections = 10;
  const BruteForceResult dfs = BruteForceSearch(f.objective, bopts);

  ASSERT_EQ(materialized.best.size(), dfs.best.size());
  for (size_t i = 0; i < dfs.best.size(); ++i) {
    EXPECT_NEAR(materialized.best[i].sparsity, dfs.best[i].sparsity, 1e-12);
    EXPECT_EQ(materialized.best[i].count, dfs.best[i].count);
  }
}

TEST(CandidateSearchTest, KEqualsOne) {
  Fixture f(100, 4, 5, 3);
  CandidateSearchOptions opts;
  opts.target_dim = 1;
  opts.num_projections = 20;
  const CandidateSearchResult result = CandidateSetSearch(f.objective, opts);
  ASSERT_TRUE(result.stats.completed);
  EXPECT_EQ(result.stats.level_sizes[0], 20u);  // 4 dims * 5 cells
  EXPECT_EQ(result.best.size(), 20u);
}

TEST(CandidateSearchTest, CandidateBudgetFailsCleanly) {
  // d=30, k=3, phi=4: |R_3| = C(30,3)*64 = 259,840 > the tiny budget.
  Fixture f(50, 30, 4, 4);
  CandidateSearchOptions opts;
  opts.target_dim = 3;
  opts.max_candidates = 10000;
  const CandidateSearchResult result = CandidateSetSearch(f.objective, opts);
  EXPECT_FALSE(result.stats.completed);
  EXPECT_TRUE(result.best.empty());
}

TEST(CandidateSearchTest, MemoryGrowsCombinatorially) {
  // The reason the DFS exists: candidate bytes at k=3 dwarf k=2.
  Fixture f(50, 12, 4, 5);
  CandidateSearchOptions opts;
  opts.num_projections = 5;
  opts.target_dim = 2;
  const CandidateSearchResult k2 = CandidateSetSearch(f.objective, opts);
  opts.target_dim = 3;
  const CandidateSearchResult k3 = CandidateSetSearch(f.objective, opts);
  ASSERT_TRUE(k2.stats.completed && k3.stats.completed);
  EXPECT_GT(k3.stats.peak_candidate_bytes,
            4 * k2.stats.peak_candidate_bytes);
}

TEST(CandidateSearchDeathTest, BadTargetDim) {
  Fixture f(10, 2, 2, 6);
  CandidateSearchOptions opts;
  opts.target_dim = 5;
  EXPECT_DEATH(CandidateSetSearch(f.objective, opts), "target_dim");
}

}  // namespace
}  // namespace hido
