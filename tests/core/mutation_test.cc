#include "core/genetic/mutation.h"

#include <set>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

TEST(MutationTest, PreservesDimensionality) {
  Rng rng(1);
  MutationOptions opts;
  opts.p1 = 1.0;
  opts.p2 = 1.0;
  for (int trial = 0; trial < 100; ++trial) {
    Projection p = Projection::Random(10, 3, 5, rng);
    MutateProjection(p, 5, opts, rng);
    EXPECT_EQ(p.Dimensionality(), 3u);
    for (const DimRange& c : p.Conditions()) EXPECT_LT(c.cell, 5u);
  }
}

TEST(MutationTest, ZeroProbabilityNeverMutates) {
  Rng rng(2);
  MutationOptions opts;
  opts.p1 = 0.0;
  opts.p2 = 0.0;
  Projection p = Projection::Random(10, 3, 5, rng);
  const Projection before = p;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(MutateProjection(p, 5, opts, rng));
  }
  EXPECT_EQ(p, before);
}

TEST(MutationTest, TypeOneMovesDimensions) {
  // With p1 = 1 and p2 = 0, the dimension set must change every time
  // (one * becomes specified and one specified becomes *).
  Rng rng(3);
  MutationOptions opts;
  opts.p1 = 1.0;
  opts.p2 = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    Projection p = Projection::Random(10, 3, 5, rng);
    const std::vector<size_t> before = p.SpecifiedDims();
    EXPECT_TRUE(MutateProjection(p, 5, opts, rng));
    EXPECT_NE(p.SpecifiedDims(), before);
    EXPECT_EQ(p.Dimensionality(), 3u);
  }
}

TEST(MutationTest, TypeTwoKeepsDimensionSet) {
  Rng rng(4);
  MutationOptions opts;
  opts.p1 = 0.0;
  opts.p2 = 1.0;
  for (int trial = 0; trial < 50; ++trial) {
    Projection p = Projection::Random(10, 3, 5, rng);
    const std::vector<size_t> before = p.SpecifiedDims();
    MutateProjection(p, 5, opts, rng);
    EXPECT_EQ(p.SpecifiedDims(), before);
  }
}

TEST(MutationTest, FullySpecifiedStringSkipsTypeOne) {
  // k == d: no * positions, Type I cannot apply.
  Rng rng(5);
  MutationOptions opts;
  opts.p1 = 1.0;
  opts.p2 = 0.0;
  Projection p = Projection::Random(4, 4, 5, rng);
  const Projection before = p;
  EXPECT_FALSE(MutateProjection(p, 5, opts, rng));
  EXPECT_EQ(p, before);
}

TEST(MutationTest, EventuallyExploresAllDimensions) {
  Rng rng(6);
  MutationOptions opts;
  opts.p1 = 0.5;
  opts.p2 = 0.5;
  Projection p = Projection::Random(12, 3, 5, rng);
  std::set<size_t> dims_seen;
  for (int i = 0; i < 2000; ++i) {
    MutateProjection(p, 5, opts, rng);
    for (size_t d : p.SpecifiedDims()) dims_seen.insert(d);
  }
  EXPECT_EQ(dims_seen.size(), 12u);
}

TEST(MutatePopulationTest, ReevaluatesChangedIndividuals) {
  GridModel::Options gopts;
  gopts.phi = 4;
  const GridModel grid =
      GridModel::Build(GenerateUniform(300, 6, 7), gopts);
  CubeCounter counter(grid);
  SparsityObjective objective(counter);

  Rng rng(8);
  std::vector<Individual> population(10);
  for (Individual& ind : population) {
    ind.projection = Projection::Random(6, 2, 4, rng);
    EvaluateIndividual(ind, 2, objective);
  }
  MutationOptions opts;
  opts.p1 = 1.0;
  opts.p2 = 1.0;
  MutatePopulation(population, 2, opts, objective, rng);
  for (const Individual& ind : population) {
    EXPECT_TRUE(ind.feasible);
    // Fitness matches a fresh evaluation of the mutated string.
    const CubeEvaluation eval = objective.Evaluate(ind.projection);
    EXPECT_DOUBLE_EQ(ind.sparsity, eval.sparsity);
    EXPECT_EQ(ind.count, eval.count);
  }
}

}  // namespace
}  // namespace hido
