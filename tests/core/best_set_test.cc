#include "core/best_set.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hido {
namespace {

ScoredProjection Make(size_t dim, uint32_t cell, double sparsity,
                      size_t count = 1) {
  ScoredProjection s;
  s.projection = Projection(8);
  s.projection.Specify(dim, cell);
  s.count = count;
  s.sparsity = sparsity;
  return s;
}

TEST(BestSetTest, KeepsMostNegative) {
  BestSet best(2);
  EXPECT_TRUE(best.Offer(Make(0, 0, -1.0)));
  EXPECT_TRUE(best.Offer(Make(1, 0, -3.0)));
  EXPECT_TRUE(best.Offer(Make(2, 0, -2.0)));  // evicts -1.0
  ASSERT_EQ(best.size(), 2u);
  EXPECT_DOUBLE_EQ(best.Sorted()[0].sparsity, -3.0);
  EXPECT_DOUBLE_EQ(best.Sorted()[1].sparsity, -2.0);
}

TEST(BestSetTest, RejectsWorseWhenFull) {
  BestSet best(1);
  best.Offer(Make(0, 0, -5.0));
  EXPECT_FALSE(best.Offer(Make(1, 0, -4.0)));
  EXPECT_DOUBLE_EQ(best.Sorted()[0].sparsity, -5.0);
}

TEST(BestSetTest, DeduplicatesByProjection) {
  BestSet best(5);
  EXPECT_TRUE(best.Offer(Make(0, 3, -2.0)));
  EXPECT_FALSE(best.Offer(Make(0, 3, -2.0)));  // identical projection
  EXPECT_TRUE(best.Offer(Make(0, 4, -2.0)));   // different cell: kept
  EXPECT_EQ(best.size(), 2u);
}

TEST(BestSetTest, EvictedKeyCanReenter) {
  BestSet best(1);
  best.Offer(Make(0, 0, -1.0));
  best.Offer(Make(1, 0, -2.0));  // evicts the first
  EXPECT_TRUE(best.Offer(Make(0, 0, -3.0)));  // same projection, better run
  EXPECT_DOUBLE_EQ(best.Sorted()[0].sparsity, -3.0);
}

TEST(BestSetTest, NonEmptyFilterDropsEmptyCubes) {
  BestSet best(3, /*require_non_empty=*/true);
  EXPECT_FALSE(best.Offer(Make(0, 0, -10.0, /*count=*/0)));
  EXPECT_TRUE(best.Offer(Make(1, 0, -1.0, /*count=*/2)));
  EXPECT_EQ(best.size(), 1u);
}

TEST(BestSetTest, EmptyCubesAllowedWhenDisabled) {
  BestSet best(3, /*require_non_empty=*/false);
  EXPECT_TRUE(best.Offer(Make(0, 0, -10.0, /*count=*/0)));
}

TEST(BestSetTest, WorstRetainedSparsity) {
  BestSet best(2);
  EXPECT_TRUE(std::isinf(best.WorstRetainedSparsity()));
  best.Offer(Make(0, 0, -2.0));
  EXPECT_TRUE(std::isinf(best.WorstRetainedSparsity()));  // not full yet
  best.Offer(Make(1, 0, -4.0));
  EXPECT_DOUBLE_EQ(best.WorstRetainedSparsity(), -2.0);
}

TEST(BestSetTest, WouldAcceptAdmitsTiesForKeyComparison) {
  BestSet best(1);
  best.Offer(Make(1, 0, -3.0));
  // Ties pass the sparsity filter; Offer decides by packed key.
  EXPECT_TRUE(best.WouldAccept(-3.0));
  EXPECT_TRUE(best.WouldAccept(-3.5));
  EXPECT_FALSE(best.WouldAccept(-2.5));
}

TEST(BestSetTest, ExactTiesBreakOnPackedKeyNotOfferOrder) {
  // Two distinct projections with identical sparsity: whichever order they
  // are offered in, the one with the smaller packed key is retained.
  const ScoredProjection low_key = Make(0, 1, -3.0);
  const ScoredProjection high_key = Make(5, 2, -3.0);
  ASSERT_TRUE(low_key.projection.PackedKey() <
              high_key.projection.PackedKey());

  BestSet forward(1);
  forward.Offer(low_key);
  EXPECT_FALSE(forward.Offer(high_key));

  BestSet backward(1);
  backward.Offer(high_key);
  EXPECT_TRUE(backward.Offer(low_key));  // displaces the tied larger key

  ASSERT_EQ(forward.size(), 1u);
  ASSERT_EQ(backward.size(), 1u);
  EXPECT_TRUE(forward.Sorted()[0].projection ==
              backward.Sorted()[0].projection);
}

TEST(BestSetTest, TiedEntriesSortedByKeyAscending) {
  BestSet best(4);
  best.Offer(Make(3, 0, -1.0));
  best.Offer(Make(1, 0, -1.0));
  best.Offer(Make(2, 0, -1.0));
  best.Offer(Make(0, 0, -2.0));
  const auto& sorted = best.Sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_DOUBLE_EQ(sorted[0].sparsity, -2.0);
  for (size_t i = 2; i < sorted.size(); ++i) {
    EXPECT_TRUE(sorted[i - 1].projection.PackedKey() <
                sorted[i].projection.PackedKey());
  }
}

TEST(BestSetTest, MeanSparsityIsTable1Quality) {
  BestSet best(3);
  best.Offer(Make(0, 0, -1.0));
  best.Offer(Make(1, 0, -2.0));
  best.Offer(Make(2, 0, -3.0));
  EXPECT_DOUBLE_EQ(best.MeanSparsity(), -2.0);
}

TEST(BestSetTest, SortedIsStableAscending) {
  BestSet best(10);
  for (int i = 0; i < 8; ++i) {
    best.Offer(Make(static_cast<size_t>(i), 0, -static_cast<double>(i)));
  }
  const auto& sorted = best.Sorted();
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].sparsity, sorted[i].sparsity);
  }
}

TEST(BestSetDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH(BestSet(0), "capacity");
}

}  // namespace
}  // namespace hido
