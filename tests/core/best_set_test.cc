#include "core/best_set.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hido {
namespace {

ScoredProjection Make(size_t dim, uint32_t cell, double sparsity,
                      size_t count = 1) {
  ScoredProjection s;
  s.projection = Projection(8);
  s.projection.Specify(dim, cell);
  s.count = count;
  s.sparsity = sparsity;
  return s;
}

TEST(BestSetTest, KeepsMostNegative) {
  BestSet best(2);
  EXPECT_TRUE(best.Offer(Make(0, 0, -1.0)));
  EXPECT_TRUE(best.Offer(Make(1, 0, -3.0)));
  EXPECT_TRUE(best.Offer(Make(2, 0, -2.0)));  // evicts -1.0
  ASSERT_EQ(best.size(), 2u);
  EXPECT_DOUBLE_EQ(best.Sorted()[0].sparsity, -3.0);
  EXPECT_DOUBLE_EQ(best.Sorted()[1].sparsity, -2.0);
}

TEST(BestSetTest, RejectsWorseWhenFull) {
  BestSet best(1);
  best.Offer(Make(0, 0, -5.0));
  EXPECT_FALSE(best.Offer(Make(1, 0, -4.0)));
  EXPECT_DOUBLE_EQ(best.Sorted()[0].sparsity, -5.0);
}

TEST(BestSetTest, DeduplicatesByProjection) {
  BestSet best(5);
  EXPECT_TRUE(best.Offer(Make(0, 3, -2.0)));
  EXPECT_FALSE(best.Offer(Make(0, 3, -2.0)));  // identical projection
  EXPECT_TRUE(best.Offer(Make(0, 4, -2.0)));   // different cell: kept
  EXPECT_EQ(best.size(), 2u);
}

TEST(BestSetTest, EvictedKeyCanReenter) {
  BestSet best(1);
  best.Offer(Make(0, 0, -1.0));
  best.Offer(Make(1, 0, -2.0));  // evicts the first
  EXPECT_TRUE(best.Offer(Make(0, 0, -3.0)));  // same projection, better run
  EXPECT_DOUBLE_EQ(best.Sorted()[0].sparsity, -3.0);
}

TEST(BestSetTest, NonEmptyFilterDropsEmptyCubes) {
  BestSet best(3, /*require_non_empty=*/true);
  EXPECT_FALSE(best.Offer(Make(0, 0, -10.0, /*count=*/0)));
  EXPECT_TRUE(best.Offer(Make(1, 0, -1.0, /*count=*/2)));
  EXPECT_EQ(best.size(), 1u);
}

TEST(BestSetTest, EmptyCubesAllowedWhenDisabled) {
  BestSet best(3, /*require_non_empty=*/false);
  EXPECT_TRUE(best.Offer(Make(0, 0, -10.0, /*count=*/0)));
}

TEST(BestSetTest, WorstRetainedSparsity) {
  BestSet best(2);
  EXPECT_TRUE(std::isinf(best.WorstRetainedSparsity()));
  best.Offer(Make(0, 0, -2.0));
  EXPECT_TRUE(std::isinf(best.WorstRetainedSparsity()));  // not full yet
  best.Offer(Make(1, 0, -4.0));
  EXPECT_DOUBLE_EQ(best.WorstRetainedSparsity(), -2.0);
}

TEST(BestSetTest, WouldAcceptConsistentWithOffer) {
  BestSet best(1);
  best.Offer(Make(0, 0, -3.0));
  EXPECT_FALSE(best.WouldAccept(-3.0));  // ties rejected
  EXPECT_TRUE(best.WouldAccept(-3.5));
}

TEST(BestSetTest, MeanSparsityIsTable1Quality) {
  BestSet best(3);
  best.Offer(Make(0, 0, -1.0));
  best.Offer(Make(1, 0, -2.0));
  best.Offer(Make(2, 0, -3.0));
  EXPECT_DOUBLE_EQ(best.MeanSparsity(), -2.0);
}

TEST(BestSetTest, SortedIsStableAscending) {
  BestSet best(10);
  for (int i = 0; i < 8; ++i) {
    best.Offer(Make(static_cast<size_t>(i), 0, -static_cast<double>(i)));
  }
  const auto& sorted = best.Sorted();
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].sparsity, sorted[i].sparsity);
  }
}

TEST(BestSetDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH(BestSet(0), "capacity");
}

}  // namespace
}  // namespace hido
