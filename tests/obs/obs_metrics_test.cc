// Unit tests for the metrics registry (src/obs/metrics.h). Named
// obs_metrics_test to stay distinct from eval/metrics_test (ranking
// metrics).

#include "obs/metrics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hido {
namespace obs {
namespace {

TEST(CounterTest, AddAccumulatesAndResetZeroes) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAddUpdateMax) {
  Gauge gauge;
  gauge.Set(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.UpdateMax(5);  // never lowers
  EXPECT_EQ(gauge.Value(), 7);
  gauge.UpdateMax(19);
  EXPECT_EQ(gauge.Value(), 19);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(HistogramTest, BucketsByUpperBoundInclusive) {
  Histogram histogram({1.0, 2.0, 5.0});
  histogram.Observe(0.5);   // <= 1
  histogram.Observe(1.0);   // <= 1 (bound is inclusive)
  histogram.Observe(1.5);   // <= 2
  histogram.Observe(5.0);   // <= 5
  histogram.Observe(99.0);  // overflow
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.total_count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5 + 1.0 + 1.5 + 5.0 + 99.0);

  histogram.Reset();
  const Histogram::Snapshot zeroed = histogram.TakeSnapshot();
  EXPECT_EQ(zeroed.total_count, 0u);
  EXPECT_EQ(zeroed.sum, 0.0);
}

TEST(MetricsRegistryTest, ReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.counter");
  Counter& b = registry.GetCounter("test.counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.GetGauge("test.gauge");
  Gauge& g2 = registry.GetGauge("test.gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.GetHistogram("test.histogram", {1.0, 2.0});
  Histogram& h2 = registry.GetHistogram("test.histogram", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra.count").Add(1);
  registry.GetCounter("alpha.count").Add(2);
  registry.GetCounter("mid.count").Add(3);
  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha.count");
  EXPECT_EQ(snapshot.counters[0].value, 2u);
  EXPECT_EQ(snapshot.counters[1].name, "mid.count");
  EXPECT_EQ(snapshot.counters[2].name, "zebra.count");
}

TEST(MetricsRegistryTest, ResetForTestKeepsReferencesValid) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("reset.count");
  counter.Add(5);
  registry.ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(1);  // cached reference still live
  EXPECT_EQ(registry.GetCounter("reset.count").Value(), 1u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(MetricNameTest, ValidatesNamingConvention) {
  EXPECT_TRUE(IsValidMetricName("search.evaluations"));
  EXPECT_TRUE(IsValidMetricName("baseline.knn.points_scored"));
  EXPECT_TRUE(IsValidMetricName("pool.queue_high_water"));
  EXPECT_TRUE(IsValidMetricName("a"));
  EXPECT_TRUE(IsValidMetricName("a2.b_3"));

  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("."));
  EXPECT_FALSE(IsValidMetricName("a..b"));
  EXPECT_FALSE(IsValidMetricName("a.b."));
  EXPECT_FALSE(IsValidMetricName(".a"));
  EXPECT_FALSE(IsValidMetricName("Upper.case"));
  EXPECT_FALSE(IsValidMetricName("a.2leading_digit"));
  EXPECT_FALSE(IsValidMetricName("a._leading_underscore"));
  EXPECT_FALSE(IsValidMetricName("spa ce"));
  EXPECT_FALSE(IsValidMetricName("dash-ed"));
}

TEST(MetricsRegistryDeathTest, RejectsMalformedName) {
  MetricsRegistry registry;
  EXPECT_DEATH(registry.GetCounter("Bad Name"), "bad metric name");
}

TEST(MetricsRegistryDeathTest, RejectsKindCollision) {
  MetricsRegistry registry;
  registry.GetCounter("collide.name");
  EXPECT_DEATH(registry.GetGauge("collide.name"),
               "already registered as another kind");
}

TEST(MetricsRegistryDeathTest, RejectsHistogramBoundsMismatch) {
  MetricsRegistry registry;
  registry.GetHistogram("bounds.check", {1.0, 2.0});
  EXPECT_DEATH(registry.GetHistogram("bounds.check", {1.0, 3.0}),
               "different bounds");
}

TEST(HistogramDeathTest, RejectsBadBounds) {
  EXPECT_DEATH(Histogram(std::vector<double>{}),
               "at least one bucket bound");
  EXPECT_DEATH(Histogram(std::vector<double>{2.0, 1.0}),
               "strictly increasing");
}

}  // namespace
}  // namespace obs
}  // namespace hido
