#include "obs/trace.h"

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace hido {
namespace obs {
namespace {

// The tests share the global tracer and metrics registry (spans always
// record there), so each one starts from a clean tree and registry.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetEnabled(true);
    Tracer::Global().Reset();
    MetricsRegistry::Global().ResetForTest();
  }
};

// The trace.<span>.seconds histogram for `span`, or a zeroed sample when
// the span never recorded.
HistogramSample SpanHistogram(const std::string& span) {
  const MetricsSnapshot snapshot =
      MetricsRegistry::Global().TakeSnapshot();
  for (const HistogramSample& sample : snapshot.histograms) {
    if (sample.name == "trace." + span + ".seconds") return sample;
  }
  return HistogramSample{};
}

TEST_F(TraceTest, NestedSpansBuildAHierarchy) {
  {
    const TraceSpan outer("outer");
    {
      const TraceSpan inner("inner");
    }
  }
  const TraceNode root = Tracer::Global().TakeSnapshot();
  ASSERT_EQ(root.children.count("outer"), 1u);
  const TraceNode& outer = root.children.at("outer");
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_GE(outer.seconds, 0.0);
  ASSERT_EQ(outer.children.count("inner"), 1u);
  EXPECT_EQ(outer.children.at("inner").calls, 1u);
  // Inclusive times: the parent covers at least its child.
  EXPECT_GE(outer.seconds, outer.children.at("inner").seconds);
}

TEST_F(TraceTest, IdenticalPathsAggregate) {
  for (int i = 0; i < 3; ++i) {
    const TraceSpan span("repeated");
  }
  const TraceNode root = Tracer::Global().TakeSnapshot();
  ASSERT_EQ(root.children.count("repeated"), 1u);
  EXPECT_EQ(root.children.at("repeated").calls, 3u);
}

TEST_F(TraceTest, SiblingSpansShareAParentNode) {
  {
    const TraceSpan phase("phase");
    { const TraceSpan a("step_a"); }
    { const TraceSpan b("step_b"); }
  }
  const TraceNode root = Tracer::Global().TakeSnapshot();
  const TraceNode& phase = root.children.at("phase");
  EXPECT_EQ(phase.children.size(), 2u);
  EXPECT_EQ(phase.children.count("step_a"), 1u);
  EXPECT_EQ(phase.children.count("step_b"), 1u);
}

TEST_F(TraceTest, SpansOnAnotherThreadRootTheirOwnPath) {
  const TraceSpan main_span("main_side");
  std::thread worker([] { const TraceSpan span("worker_side"); });
  worker.join();
  const TraceNode root = Tracer::Global().TakeSnapshot();
  // The worker's span is a root child, not a child of "main_side" (which
  // is still open on this thread and therefore not recorded yet).
  ASSERT_EQ(root.children.count("worker_side"), 1u);
  EXPECT_EQ(root.children.count("main_side"), 0u);
  EXPECT_TRUE(root.children.at("worker_side").children.empty());
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::Global().SetEnabled(false);
  {
    const TraceSpan span("ignored");
  }
  Tracer::Global().SetEnabled(true);
  const TraceNode root = Tracer::Global().TakeSnapshot();
  EXPECT_TRUE(root.children.empty());
}

TEST_F(TraceTest, ResetClearsTheTree) {
  {
    const TraceSpan span("gone");
  }
  Tracer::Global().Reset();
  EXPECT_TRUE(Tracer::Global().TakeSnapshot().children.empty());
}

// ---------------------------------------------- duration histograms --

TEST_F(TraceTest, SpanCloseFeedsDurationHistogram) {
  for (int i = 0; i < 3; ++i) {
    const TraceSpan span("timed_phase");
  }
  const HistogramSample sample = SpanHistogram("timed_phase");
  EXPECT_EQ(sample.name, "trace.timed_phase.seconds");
  EXPECT_EQ(sample.snapshot.total_count, 3u);
  EXPECT_GE(sample.snapshot.sum, 0.0);
}

// The histogram is keyed by the span's *name* (the path leaf), so the same
// phase aggregates into one distribution no matter where in the tree it
// ran — and the presence/count of histograms stays thread-invariant even
// though the recorded times are not.
TEST_F(TraceTest, HistogramKeysByLeafNameAcrossPathsAndThreads) {
  {
    const TraceSpan outer("h_outer");
    const TraceSpan inner("h_leaf");
  }
  std::thread worker([] { const TraceSpan span("h_leaf"); });
  worker.join();
  EXPECT_EQ(SpanHistogram("h_leaf").snapshot.total_count, 2u);
  EXPECT_EQ(SpanHistogram("h_outer").snapshot.total_count, 1u);
}

// SetEnabled(false) must suppress the histograms along with the tree: the
// disabled span is the overhead baseline and may not touch the registry.
TEST_F(TraceTest, DisabledTracerRecordsNoHistograms) {
  Tracer::Global().SetEnabled(false);
  {
    const TraceSpan span("silent");
  }
  Tracer::Global().SetEnabled(true);
  EXPECT_EQ(SpanHistogram("silent").snapshot.total_count, 0u);
  EXPECT_TRUE(SpanHistogram("silent").name.empty());  // never registered
}

}  // namespace
}  // namespace obs
}  // namespace hido
