#include "obs/trace.h"

#include <thread>

#include <gtest/gtest.h>

namespace hido {
namespace obs {
namespace {

// The tests share the global tracer (spans always record there), so each
// one starts from a clean tree.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetEnabled(true);
    Tracer::Global().Reset();
  }
};

TEST_F(TraceTest, NestedSpansBuildAHierarchy) {
  {
    const TraceSpan outer("outer");
    {
      const TraceSpan inner("inner");
    }
  }
  const TraceNode root = Tracer::Global().TakeSnapshot();
  ASSERT_EQ(root.children.count("outer"), 1u);
  const TraceNode& outer = root.children.at("outer");
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_GE(outer.seconds, 0.0);
  ASSERT_EQ(outer.children.count("inner"), 1u);
  EXPECT_EQ(outer.children.at("inner").calls, 1u);
  // Inclusive times: the parent covers at least its child.
  EXPECT_GE(outer.seconds, outer.children.at("inner").seconds);
}

TEST_F(TraceTest, IdenticalPathsAggregate) {
  for (int i = 0; i < 3; ++i) {
    const TraceSpan span("repeated");
  }
  const TraceNode root = Tracer::Global().TakeSnapshot();
  ASSERT_EQ(root.children.count("repeated"), 1u);
  EXPECT_EQ(root.children.at("repeated").calls, 3u);
}

TEST_F(TraceTest, SiblingSpansShareAParentNode) {
  {
    const TraceSpan phase("phase");
    { const TraceSpan a("step_a"); }
    { const TraceSpan b("step_b"); }
  }
  const TraceNode root = Tracer::Global().TakeSnapshot();
  const TraceNode& phase = root.children.at("phase");
  EXPECT_EQ(phase.children.size(), 2u);
  EXPECT_EQ(phase.children.count("step_a"), 1u);
  EXPECT_EQ(phase.children.count("step_b"), 1u);
}

TEST_F(TraceTest, SpansOnAnotherThreadRootTheirOwnPath) {
  const TraceSpan main_span("main_side");
  std::thread worker([] { const TraceSpan span("worker_side"); });
  worker.join();
  const TraceNode root = Tracer::Global().TakeSnapshot();
  // The worker's span is a root child, not a child of "main_side" (which
  // is still open on this thread and therefore not recorded yet).
  ASSERT_EQ(root.children.count("worker_side"), 1u);
  EXPECT_EQ(root.children.count("main_side"), 0u);
  EXPECT_TRUE(root.children.at("worker_side").children.empty());
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::Global().SetEnabled(false);
  {
    const TraceSpan span("ignored");
  }
  Tracer::Global().SetEnabled(true);
  const TraceNode root = Tracer::Global().TakeSnapshot();
  EXPECT_TRUE(root.children.empty());
}

TEST_F(TraceTest, ResetClearsTheTree) {
  {
    const TraceSpan span("gone");
  }
  Tracer::Global().Reset();
  EXPECT_TRUE(Tracer::Global().TakeSnapshot().children.empty());
}

}  // namespace
}  // namespace obs
}  // namespace hido
