#include "obs/json_writer.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace hido {
namespace obs {
namespace {

TEST(JsonWriterTest, ScalarRoots) {
  {
    JsonWriter w(/*pretty=*/false);
    w.Int(-7);
    EXPECT_EQ(w.str(), "-7");
  }
  {
    JsonWriter w(/*pretty=*/false);
    w.UInt(18446744073709551615ull);
    EXPECT_EQ(w.str(), "18446744073709551615");
  }
  {
    JsonWriter w(/*pretty=*/false);
    w.Bool(true);
    EXPECT_EQ(w.str(), "true");
  }
  {
    JsonWriter w(/*pretty=*/false);
    w.Null();
    EXPECT_EQ(w.str(), "null");
  }
  {
    JsonWriter w(/*pretty=*/false);
    w.String("hi");
    EXPECT_EQ(w.str(), "\"hi\"");
  }
}

TEST(JsonWriterTest, CompactObjectAndArrayNesting) {
  JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.Key("b");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.Key("c");
  w.Bool(false);
  w.EndObject();
  w.EndArray();
  w.Key("d");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[1,2,{\"c\":false}],\"d\":{}}");
}

TEST(JsonWriterTest, PrettyPrintingIndentsTwoSpaces) {
  JsonWriter w;  // pretty by default
  w.BeginObject();
  w.Key("outer");
  w.BeginObject();
  w.Key("inner");
  w.Int(3);
  w.EndObject();
  w.Key("list");
  w.BeginArray();
  w.Int(1);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"outer\": {\n"
            "    \"inner\": 3\n"
            "  },\n"
            "  \"list\": [\n"
            "    1\n"
            "  ]\n"
            "}");
}

TEST(JsonWriterTest, EscapesControlAndSpecialCharacters) {
  JsonWriter w(/*pretty=*/false);
  w.String(std::string("a\"b\\c\n\t\r") + '\x01');
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\n\\t\\r\\u0001\"");
}

TEST(JsonWriterTest, DoublesUseShortestRoundTripForm) {
  {
    JsonWriter w(/*pretty=*/false);
    w.Double(0.1);
    EXPECT_EQ(w.str(), "0.1");
  }
  {
    JsonWriter w(/*pretty=*/false);
    w.Double(2.0);
    EXPECT_EQ(w.str(), "2");
  }
}

TEST(JsonWriterTest, NonFiniteDoublesSerializeAsNull) {
  JsonWriter w(/*pretty=*/false);
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null]");
}

TEST(JsonWriterTest, IdenticalInputsProduceIdenticalBytes) {
  const auto build = [] {
    JsonWriter w;
    w.BeginObject();
    w.Key("x");
    w.Double(1.5);
    w.Key("y");
    w.String("z");
    w.EndObject();
    return w.str();
  };
  EXPECT_EQ(build(), build());
}

TEST(JsonWriterDeathTest, UnbalancedDocumentAborts) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        (void)w.str();  // object never closed
      },
      "");
}

TEST(JsonWriterDeathTest, ValueWithoutKeyInObjectAborts) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        w.Int(1);  // no Key() first
      },
      "");
}

}  // namespace
}  // namespace obs
}  // namespace hido
