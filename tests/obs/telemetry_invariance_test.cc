// Acceptance tests for the telemetry determinism contract
// (obs/telemetry.h): the deterministic sections of a run's metrics are
// byte-identical at any thread count, and a run resumed from a checkpoint
// publishes the same cumulative counters as one that was never
// interrupted.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitset_kernels.h"
#include "common/run_control.h"
#include "common/string_util.h"
#include "core/detector.h"
#include "core/search_checkpoint.h"
#include "data/generators/synthetic.h"
#include "obs/telemetry.h"

namespace hido {
namespace obs {
namespace {

// Counters documented as scheduling-dependent (see obs/telemetry.h): the
// cube-counter per-worker caches restart cold and its strategy dispatch
// depends on which worker claims a query, so their breakdowns move between
// schedules while their total (counter.queries) does not. The whole
// serving-path family (private hits, shared hits, prefix finishes,
// evictions) and the shared-cache table's own statistics are variant for
// the same reason.
bool IsThreadVariant(const std::string& name) {
  return name == "counter.cache_hits" || name == "counter.shared_hits" ||
         name == "counter.prefix_counts" || name == "counter.bitset_counts" ||
         name == "counter.posting_counts" || name == "counter.naive_counts" ||
         name == "counter.cache_evictions" || name == "counter.cache_clears" ||
         name.rfind("cube.cache.shared.", 0) == 0 ||
         // Configuration-variant, same contract section: the grid's
         // array/bitmap split follows the container threshold.
         name.rfind("grid.containers.", 0) == 0;
}

// Histograms documented as wall-clock (`variant` in the contract): span
// durations (trace.<span>.seconds), member/combine durations, and the
// serve-side latency family. Their *presence* is thread-invariant; their
// bucket contents are timing and stay out of the compared bytes.
bool IsThreadVariantHistogram(const std::string& name) {
  return name.rfind("trace.", 0) == 0 || name.rfind("serve.", 0) == 0 ||
         name.rfind("ensemble.", 0) == 0;
}

// Flattens a report to bytes so runs can be compared for the documented
// bit-identical-results contract.
std::string SerializeReport(const OutlierReport& report) {
  std::string out;
  for (const ScoredProjection& s : report.projections) {
    out += s.projection.ToString();
    out += StrFormat("|count=%zu|sparsity=%.17g\n", s.count, s.sparsity);
  }
  for (const OutlierRecord& o : report.outliers) {
    out += StrFormat("row=%zu|best=%.17g|covering=", o.row, o.best_sparsity);
    for (size_t id : o.projection_ids) out += StrFormat("%zu,", id);
    out += "\n";
  }
  return out;
}

// Runs one full detection at `threads` workers against a clean registry
// and returns the serialized thread-invariant counter + histogram
// sections.
std::string DetectAndSerializeInvariantSections(
    const Dataset& data, size_t threads,
    CubeCacheMode cache_mode = CubeCacheMode::kPrivate,
    std::string* report_bytes = nullptr,
    size_t container_threshold = GridModel::kAutoArrayThreshold) {
  MetricsRegistry::Global().ResetForTest();
  Tracer::Global().Reset();

  DetectorConfig config;
  config.phi = 4;
  config.target_dim = 2;
  config.num_projections = 6;
  config.evolution.population_size = 24;
  config.evolution.max_generations = 15;
  config.evolution.stagnation_generations = 0;
  config.evolution.restarts = 2;
  config.seed = 29;
  config.num_threads = threads;
  config.cache_mode = cache_mode;
  config.container_threshold = container_threshold;
  const DetectionResult result = OutlierDetector(config).Detect(data);
  EXPECT_TRUE(result.completed);
  if (report_bytes != nullptr) *report_bytes = SerializeReport(result.report);

  RunTelemetry telemetry = CaptureRunTelemetry("invariance test");
  RunTelemetry filtered;
  filtered.tool = telemetry.tool;
  for (const CounterSample& counter : telemetry.metrics.counters) {
    if (!IsThreadVariant(counter.name)) {
      filtered.metrics.counters.push_back(counter);
    }
  }
  for (const HistogramSample& histogram : telemetry.metrics.histograms) {
    if (!IsThreadVariantHistogram(histogram.name)) {
      filtered.metrics.histograms.push_back(histogram);
    }
  }
  // Gauges (pool.*) and timing are wall-clock/schedule territory by
  // definition; they stay out of the compared bytes.
  return SerializeRunTelemetry(filtered);
}

TEST(TelemetryInvarianceTest, InvariantCountersAreByteIdenticalAcrossThreads) {
  const Dataset data = GenerateUniform(300, 8, 13);
  const std::string at_one = DetectAndSerializeInvariantSections(data, 1);
  const std::string at_two = DetectAndSerializeInvariantSections(data, 2);
  const std::string at_eight = DetectAndSerializeInvariantSections(data, 8);
  EXPECT_EQ(at_one, at_two);
  EXPECT_EQ(at_one, at_eight);
  // Sanity: the compared bytes actually contain the work counters.
  EXPECT_NE(at_one.find("search.evaluations"), std::string::npos);
  EXPECT_NE(at_one.find("search.crossovers"), std::string::npos);
  EXPECT_NE(at_one.find("counter.queries"), std::string::npos);
  EXPECT_NE(at_one.find("search.restart_generations"), std::string::npos);
}

// The shared-cache acceptance criterion: the outlier report and the
// invariant telemetry sections are byte-identical for every cache mode ×
// thread count combination — memoization changes which code path computes
// a count, never its value.
TEST(TelemetryInvarianceTest,
     ReportAndInvariantCountersAreIdenticalAcrossCacheModes) {
  const Dataset data = GenerateUniform(300, 8, 13);
  std::string baseline_report;
  const std::string baseline = DetectAndSerializeInvariantSections(
      data, 1, CubeCacheMode::kPrivate, &baseline_report);
  ASSERT_FALSE(baseline_report.empty());
  for (const CubeCacheMode mode :
       {CubeCacheMode::kPrivate, CubeCacheMode::kShared, CubeCacheMode::kOff}) {
    for (const size_t threads : {1u, 2u, 8u}) {
      std::string report;
      const std::string sections =
          DetectAndSerializeInvariantSections(data, threads, mode, &report);
      EXPECT_EQ(sections, baseline)
          << "mode=" << CubeCacheModeToString(mode) << " threads=" << threads;
      EXPECT_EQ(report, baseline_report)
          << "mode=" << CubeCacheModeToString(mode) << " threads=" << threads;
    }
  }
}

// The counting-substrate acceptance criterion (kernels + containers are
// encoding knobs): the report and invariant telemetry sections are
// byte-identical under every counting kernel this host can run and every
// container-threshold extreme, alone and crossed with threads.
TEST(TelemetryInvarianceTest,
     ReportAndInvariantCountersAreIdenticalAcrossKernelsAndContainers) {
  const Dataset data = GenerateUniform(300, 8, 13);
  std::string baseline_report;
  const std::string baseline = DetectAndSerializeInvariantSections(
      data, 1, CubeCacheMode::kPrivate, &baseline_report);
  ASSERT_FALSE(baseline_report.empty());
  for (const KernelKind kind : AvailableKernels()) {
    const ScopedKernelOverride forced(kind);
    for (const size_t threshold :
         {size_t{0}, size_t{301}, GridModel::kAutoArrayThreshold}) {
      for (const size_t threads : {1u, 8u}) {
        std::string report;
        const std::string sections = DetectAndSerializeInvariantSections(
            data, threads, CubeCacheMode::kShared, &report, threshold);
        EXPECT_EQ(sections, baseline)
            << "kernel=" << KernelKindName(kind)
            << " threshold=" << threshold << " threads=" << threads;
        EXPECT_EQ(report, baseline_report)
            << "kernel=" << KernelKindName(kind)
            << " threshold=" << threshold << " threads=" << threads;
      }
    }
  }
}

uint64_t CounterValue(const MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const CounterSample& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  ADD_FAILURE() << "counter not published: " << name;
  return 0;
}

// The resume-continuity acceptance criterion: interrupt a search, resume
// it from the checkpoint, and the resumed run's *published* cumulative
// counters equal the uninterrupted run's — the tallies persist through the
// checkpoint (format v2 `ops` line) instead of restarting at zero.
TEST(TelemetryInvarianceTest, ResumedRunPublishesUninterruptedTotals) {
  const Dataset data = GenerateUniform(300, 8, 7);
  GridModel::Options grid_options;
  grid_options.phi = 4;
  const GridModel grid = GridModel::Build(data, grid_options);
  CubeCounter counter(grid);
  SparsityObjective objective(counter);

  EvolutionaryOptions opts;
  opts.target_dim = 2;
  opts.num_projections = 6;
  opts.population_size = 24;
  opts.max_generations = 40;
  opts.stagnation_generations = 0;
  opts.restarts = 3;
  opts.seed = 17;

  MetricsRegistry::Global().ResetForTest();
  const EvolutionResult uninterrupted = EvolutionarySearch(objective, opts);
  ASSERT_TRUE(uninterrupted.stats.completed);
  const MetricsSnapshot full = MetricsRegistry::Global().TakeSnapshot();

  const std::string path =
      ::testing::TempDir() + "/hido_telemetry_resume.txt";
  EvolutionaryOptions interrupted_opts = opts;
  interrupted_opts.checkpoint_path = path;
  interrupted_opts.checkpoint_every_generations = 3;
  StopToken token;
  token.ArmFailpoint(20);
  interrupted_opts.stop = &token;
  const EvolutionResult interrupted =
      EvolutionarySearch(objective, interrupted_opts);
  ASSERT_FALSE(interrupted.stats.completed);

  Result<EvolutionCheckpoint> checkpoint = LoadCheckpoint(path);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  MetricsRegistry::Global().ResetForTest();
  EvolutionaryOptions resume_opts = opts;
  resume_opts.resume = &checkpoint.value();
  const EvolutionResult resumed = EvolutionarySearch(objective, resume_opts);
  ASSERT_TRUE(resumed.stats.completed);
  const MetricsSnapshot after_resume =
      MetricsRegistry::Global().TakeSnapshot();

  for (const char* name :
       {"search.runs", "search.generations", "search.evaluations",
        "search.crossovers", "search.mutations", "search.selections",
        "search.restarts_completed", "counter.queries"}) {
    EXPECT_EQ(CounterValue(after_resume, name), CounterValue(full, name))
        << name;
  }
  EXPECT_EQ(CounterValue(after_resume, "checkpoint.resumes"), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace hido
