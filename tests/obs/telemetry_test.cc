#include "obs/telemetry.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/file_util.h"

namespace hido {
namespace obs {
namespace {

RunTelemetry MakeSample() {
  RunTelemetry telemetry;
  telemetry.tool = "hido test";
  telemetry.config = {{"input", "demo.csv"},
                      {"threads", static_cast<uint64_t>(4)},
                      {"resumed", false},
                      {"phi", 5}};
  telemetry.metrics.counters = {{"grid.builds", 1},
                                {"search.evaluations", 1234}};
  telemetry.metrics.gauges = {{"pool.workers", 4}};
  Histogram::Snapshot h;
  h.upper_bounds = {1.0, 5.0};
  h.counts = {2, 1, 0};
  h.total_count = 3;
  h.sum = 6.0;
  telemetry.metrics.histograms = {{"search.restart_generations", h}};
  telemetry.results.push_back({{"completed", true},
                               {"mean_quality", -2.5}});
  telemetry.timing.children["detect"].seconds = 0.25;
  telemetry.timing.children["detect"].calls = 1;
  telemetry.timing.children["detect"].children["grid_build"].seconds = 0.1;
  telemetry.timing.children["detect"].children["grid_build"].calls = 1;
  return telemetry;
}

TEST(TelemetryTest, SerializesSectionsInFixedOrder) {
  const std::string json = SerializeRunTelemetry(MakeSample());
  const size_t schema = json.find("\"schema_version\"");
  const size_t tool = json.find("\"tool\"");
  const size_t config = json.find("\"config\"");
  const size_t counters = json.find("\"counters\"");
  const size_t gauges = json.find("\"gauges\"");
  const size_t histograms = json.find("\"histograms\"");
  const size_t results = json.find("\"results\"");
  const size_t timing = json.find("\"timing\"");
  ASSERT_NE(schema, std::string::npos);
  ASSERT_NE(timing, std::string::npos);
  EXPECT_LT(schema, tool);
  EXPECT_LT(tool, config);
  EXPECT_LT(config, counters);
  EXPECT_LT(counters, gauges);
  EXPECT_LT(gauges, histograms);
  EXPECT_LT(histograms, results);
  // Wall-clock is segregated after every deterministic section.
  EXPECT_LT(results, timing);
  EXPECT_EQ(json.back(), '\n');
}

TEST(TelemetryTest, SerializationIsDeterministic) {
  EXPECT_EQ(SerializeRunTelemetry(MakeSample()),
            SerializeRunTelemetry(MakeSample()));
}

TEST(TelemetryTest, SerializesValuesFaithfully) {
  const std::string json = SerializeRunTelemetry(MakeSample());
  EXPECT_NE(json.find("\"input\": \"demo.csv\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"resumed\": false"), std::string::npos);
  EXPECT_NE(json.find("\"search.evaluations\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"mean_quality\": -2.5"), std::string::npos);
  EXPECT_NE(json.find("\"total_count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"grid_build\""), std::string::npos);
}

TEST(TelemetryTest, WriteRunTelemetryJsonRoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "/hido_telemetry.json";
  ASSERT_TRUE(WriteRunTelemetryJson(MakeSample(), path).ok());
  const Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), SerializeRunTelemetry(MakeSample()));
  std::remove(path.c_str());
}

TEST(TelemetryTest, WriteFailsOnUnwritablePath) {
  EXPECT_FALSE(
      WriteRunTelemetryJson(MakeSample(), "/nonexistent/dir/telemetry.json")
          .ok());
}

TEST(TelemetryTest, SummaryRendersEverySection) {
  const std::string summary = RenderTelemetrySummary(MakeSample());
  EXPECT_NE(summary.find("run telemetry (hido test)"), std::string::npos);
  EXPECT_NE(summary.find("config:"), std::string::npos);
  EXPECT_NE(summary.find("counters:"), std::string::npos);
  EXPECT_NE(summary.find("gauges:"), std::string::npos);
  EXPECT_NE(summary.find("histograms:"), std::string::npos);
  EXPECT_NE(summary.find("timing"), std::string::npos);
  EXPECT_NE(summary.find("search.evaluations"), std::string::npos);
  EXPECT_NE(summary.find("grid_build"), std::string::npos);
}

TEST(TelemetryTest, CaptureBridgesPoolGauges) {
  MetricsRegistry::Global().ResetForTest();
  const RunTelemetry captured = CaptureRunTelemetry("capture test");
  EXPECT_EQ(captured.tool, "capture test");
  bool found_workers = false;
  for (const GaugeSample& gauge : captured.metrics.gauges) {
    if (gauge.name == "pool.workers") {
      found_workers = true;
      EXPECT_GE(gauge.value, 1);
    }
  }
  EXPECT_TRUE(found_workers);
}

TEST(TelemetryValueTest, DisplayStringsCoverEveryKind) {
  EXPECT_EQ(TelemetryValue("abc").ToDisplayString(), "abc");
  EXPECT_EQ(TelemetryValue(-3).ToDisplayString(), "-3");
  EXPECT_EQ(TelemetryValue(static_cast<uint64_t>(7)).ToDisplayString(), "7");
  EXPECT_EQ(TelemetryValue(2.5).ToDisplayString(), "2.5");
  EXPECT_EQ(TelemetryValue(true).ToDisplayString(), "true");
  EXPECT_EQ(TelemetryValue(false).ToDisplayString(), "false");
}

}  // namespace
}  // namespace obs
}  // namespace hido
