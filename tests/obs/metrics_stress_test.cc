// Concurrency stress for the metrics instruments, aimed at the TSan CI
// job: pool workers hammer one counter, one gauge, and one histogram
// through the same ParallelFor substrate the search uses, then the test
// checks exact totals (sharded counters lose nothing) and snapshot
// determinism (two snapshots of a quiesced registry serialize to the same
// bytes).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace hido {
namespace obs {
namespace {

constexpr size_t kTasks = 64;
constexpr size_t kOpsPerTask = 2000;
constexpr size_t kThreads = 8;

TEST(MetricsStressTest, ConcurrentCounterAddsLoseNothing) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("stress.count");
  ParallelFor(kTasks, kThreads, [&](size_t task, size_t) {
    for (size_t i = 0; i < kOpsPerTask; ++i) {
      counter.Add(1);
    }
    counter.Add(task);  // uneven extra so shard sums matter
  });
  uint64_t expected = kTasks * kOpsPerTask;
  for (size_t task = 0; task < kTasks; ++task) expected += task;
  EXPECT_EQ(counter.Value(), expected);
}

TEST(MetricsStressTest, ConcurrentGaugeUpdateMaxFindsTheMaximum) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("stress.high_water");
  ParallelFor(kTasks, kThreads, [&](size_t task, size_t) {
    for (size_t i = 0; i < kOpsPerTask; ++i) {
      gauge.UpdateMax(static_cast<int64_t>(task * kOpsPerTask + i));
    }
  });
  EXPECT_EQ(gauge.Value(),
            static_cast<int64_t>((kTasks - 1) * kOpsPerTask +
                                 (kOpsPerTask - 1)));
}

TEST(MetricsStressTest, ConcurrentHistogramObservationsAreExact) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.GetHistogram("stress.values", {10.0, 100.0, 1000.0});
  ParallelFor(kTasks, kThreads, [&](size_t task, size_t) {
    for (size_t i = 0; i < kOpsPerTask; ++i) {
      // Integer-valued observations: bucket counts AND the sum are exact
      // and order-independent, so totals are schedule-invariant.
      histogram.Observe(static_cast<double>((task + i) % 2000));
    }
  });
  const Histogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.total_count, kTasks * kOpsPerTask);
  uint64_t count = 0;
  for (const uint64_t bucket : snapshot.counts) count += bucket;
  EXPECT_EQ(count, kTasks * kOpsPerTask);
  double expected_sum = 0.0;
  for (size_t task = 0; task < kTasks; ++task) {
    for (size_t i = 0; i < kOpsPerTask; ++i) {
      expected_sum += static_cast<double>((task + i) % 2000);
    }
  }
  EXPECT_EQ(snapshot.sum, expected_sum);
}

TEST(MetricsStressTest, ConcurrentRegistrationReturnsOneInstrument) {
  MetricsRegistry registry;
  std::vector<Counter*> seen(kTasks, nullptr);
  ParallelFor(kTasks, kThreads, [&](size_t task, size_t) {
    seen[task] = &registry.GetCounter("stress.race");
    seen[task]->Add(1);
  });
  for (size_t task = 1; task < kTasks; ++task) {
    EXPECT_EQ(seen[task], seen[0]);
  }
  EXPECT_EQ(seen[0]->Value(), kTasks);
}

TEST(MetricsStressTest, QuiescedSnapshotsSerializeIdentically) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("stress.snap_count");
  Histogram& histogram = registry.GetHistogram("stress.snap_hist", {8.0});
  ParallelFor(kTasks, kThreads, [&](size_t task, size_t) {
    counter.Add(task);
    histogram.Observe(static_cast<double>(task % 16));
  });
  // All workers joined: the registry is quiesced, so two snapshots must
  // agree byte-for-byte once serialized.
  const auto serialize = [&registry] {
    RunTelemetry telemetry;
    telemetry.tool = "stress";
    telemetry.metrics = registry.TakeSnapshot();
    return SerializeRunTelemetry(telemetry);
  };
  EXPECT_EQ(serialize(), serialize());
}

}  // namespace
}  // namespace obs
}  // namespace hido
