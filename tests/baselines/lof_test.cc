#include "baselines/lof.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

TEST(LofTest, UniformClusterScoresNearOne) {
  const Dataset ds = GenerateUniform(300, 2, 1);
  const DistanceMetric metric(ds);
  LofOptions opts;
  opts.min_pts = 10;
  const std::vector<double> scores = ComputeLof(metric, opts);
  ASSERT_EQ(scores.size(), 300u);
  size_t near_one = 0;
  for (double s : scores) {
    near_one += (s > 0.7 && s < 1.6) ? 1 : 0;
  }
  EXPECT_GT(near_one, 270u);  // bulk of uniform data is unremarkable
}

TEST(LofTest, IsolatedPointGetsHighestScore) {
  Dataset ds(2);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    ds.AppendRow({0.5 + 0.05 * rng.Normal(), 0.5 + 0.05 * rng.Normal()});
  }
  ds.AppendRow({5.0, 5.0});  // row 100
  DistanceMetric::Options mopts;
  mopts.normalize = false;
  const DistanceMetric metric(ds, mopts);
  LofOptions opts;
  opts.min_pts = 10;
  const std::vector<double> scores = ComputeLof(metric, opts);
  const std::vector<size_t> top = TopNByScore(scores, 1);
  EXPECT_EQ(top[0], 100u);
  EXPECT_GT(scores[100], 5.0);
}

TEST(LofTest, LocalDensityAwareness) {
  // LOF's selling point: a point at the edge of a sparse cluster is NOT an
  // outlier, but a point between a dense cluster and it is. Construct the
  // classic two-cluster scenario.
  Dataset ds(2);
  Rng rng(3);
  // Dense cluster around (0, 0).
  for (int i = 0; i < 100; ++i) {
    ds.AppendRow({0.01 * rng.Normal(), 0.01 * rng.Normal()});
  }
  // Sparse cluster around (2, 2).
  for (int i = 0; i < 100; ++i) {
    ds.AppendRow({2.0 + 0.3 * rng.Normal(), 2.0 + 0.3 * rng.Normal()});
  }
  // A point just outside the dense cluster (outlier w.r.t. local density).
  ds.AppendRow({0.1, 0.1});  // row 200
  DistanceMetric::Options mopts;
  mopts.normalize = false;
  const DistanceMetric metric(ds, mopts);
  LofOptions opts;
  opts.min_pts = 10;
  const std::vector<double> scores = ComputeLof(metric, opts);
  // Row 200 scores clearly above the sparse cluster's members.
  double max_sparse_cluster = 0.0;
  for (size_t i = 100; i < 200; ++i) {
    max_sparse_cluster = std::max(max_sparse_cluster, scores[i]);
  }
  EXPECT_GT(scores[200], max_sparse_cluster);
}

TEST(LofTest, DuplicatePointsDontCrash) {
  Dataset ds(2);
  for (int i = 0; i < 30; ++i) ds.AppendRow({0.5, 0.5});
  ds.AppendRow({0.9, 0.9});
  const DistanceMetric metric(ds);
  LofOptions opts;
  opts.min_pts = 5;
  const std::vector<double> scores = ComputeLof(metric, opts);
  ASSERT_EQ(scores.size(), 31u);
  for (double s : scores) {
    EXPECT_FALSE(std::isnan(s));
  }
}

TEST(LofTest, ParallelMatchesSerialBitExactly) {
  const Dataset ds = GenerateUniform(300, 5, 9);
  const DistanceMetric metric(ds);
  LofOptions opts;
  opts.min_pts = 8;
  opts.num_threads = 1;
  const std::vector<double> serial = ComputeLof(metric, opts);
  for (size_t threads : {2u, 4u, 0u}) {
    opts.num_threads = threads;
    const std::vector<double> parallel = ComputeLof(metric, opts);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "threads=" << threads
                                        << " row=" << i;
    }
  }
}

TEST(LofTest, CancelledRunMarksUncomputedScoresNaN) {
  const Dataset ds = GenerateUniform(150, 4, 10);
  const DistanceMetric metric(ds);
  StopToken token;
  token.ArmFailpoint(40);  // fires during pass 1 of 3
  LofOptions opts;
  opts.min_pts = 5;
  opts.stop = &token;
  RunStatus status;
  const std::vector<double> partial = ComputeLof(metric, opts, &status);
  EXPECT_FALSE(status.completed);
  EXPECT_EQ(status.stop_cause, StopCause::kFailpoint);
  ASSERT_EQ(partial.size(), 150u);

  // Every computed score must be exact — identical to the full run's value;
  // everything else must be NaN, and at least something must be NaN given
  // the failpoint fired before pass 1 finished.
  const std::vector<double> full = ComputeLof(metric, LofOptions{5});
  size_t nans = 0;
  for (size_t i = 0; i < partial.size(); ++i) {
    if (std::isnan(partial[i])) {
      ++nans;
    } else {
      EXPECT_EQ(partial[i], full[i]) << i;
    }
  }
  EXPECT_GE(nans, 1u);
}

TEST(LofTest, PreCancelledTokenYieldsAllNaN) {
  const Dataset ds = GenerateUniform(50, 3, 11);
  const DistanceMetric metric(ds);
  StopToken token;
  token.RequestCancel();
  LofOptions opts;
  opts.min_pts = 3;
  opts.stop = &token;
  RunStatus status;
  const std::vector<double> scores = ComputeLof(metric, opts, &status);
  EXPECT_FALSE(status.completed);
  for (double s : scores) EXPECT_TRUE(std::isnan(s));
  // And the ranking helper never selects an unscored row.
  EXPECT_TRUE(TopNByScore(scores, 10).empty());
}

TEST(TopNByScoreTest, SkipsNanScores) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> scores = {1.0, nan, 3.0, nan, 2.0};
  EXPECT_EQ(TopNByScore(scores, 4), (std::vector<size_t>{2, 4, 0}));
}

TEST(TopNByScoreTest, OrdersByScoreThenIndex) {
  const std::vector<double> scores = {1.0, 5.0, 3.0, 5.0};
  const std::vector<size_t> top = TopNByScore(scores, 3);
  EXPECT_EQ(top, (std::vector<size_t>{1, 3, 2}));
}

TEST(TopNByScoreTest, NLargerThanSizeClamps) {
  const std::vector<double> scores = {1.0, 2.0};
  EXPECT_EQ(TopNByScore(scores, 10).size(), 2u);
}

TEST(LofDeathTest, InvalidMinPts) {
  const Dataset ds = GenerateUniform(10, 2, 4);
  const DistanceMetric metric(ds);
  LofOptions opts;
  opts.min_pts = 10;  // == n
  EXPECT_DEATH(ComputeLof(metric, opts), "min_pts");
}

}  // namespace
}  // namespace hido
