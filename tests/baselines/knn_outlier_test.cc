#include "baselines/knn_outlier.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

TEST(KnnOutlierTest, FindsTheObviousGlobalOutlier) {
  Dataset ds(2);
  for (int i = 0; i < 50; ++i) {
    ds.AppendRow({0.5 + 0.001 * i, 0.5 - 0.001 * i});
  }
  ds.AppendRow({10.0, 10.0});  // row 50, far away
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 1;
  opts.num_outliers = 1;
  const std::vector<KnnOutlier> out = TopNKnnOutliers(metric, opts);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, 50u);
}

TEST(KnnOutlierTest, MatchesReferenceImplementation) {
  const Dataset ds = GenerateUniform(150, 4, 1);
  const DistanceMetric metric(ds);
  for (size_t k : {1u, 3u, 5u}) {
    KnnOutlierOptions opts;
    opts.k = k;
    opts.num_outliers = 10;
    const std::vector<KnnOutlier> got = TopNKnnOutliers(metric, opts);
    ASSERT_EQ(got.size(), 10u);

    const std::vector<double> all = AllKthNeighborDistances(metric, k);
    std::vector<double> sorted = all;
    std::sort(sorted.rbegin(), sorted.rend());
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_DOUBLE_EQ(got[i].kth_distance, sorted[i]) << "k=" << k;
      EXPECT_DOUBLE_EQ(got[i].kth_distance, all[got[i].row]);
    }
  }
}

TEST(KnnOutlierTest, VpTreePathAgreesWithNestedLoop) {
  const Dataset ds = GenerateUniform(120, 3, 2);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 2;
  opts.num_outliers = 8;
  const std::vector<KnnOutlier> loop = TopNKnnOutliers(metric, opts);
  opts.use_vptree = true;
  const std::vector<KnnOutlier> tree = TopNKnnOutliers(metric, opts);
  ASSERT_EQ(loop.size(), tree.size());
  for (size_t i = 0; i < loop.size(); ++i) {
    EXPECT_DOUBLE_EQ(loop[i].kth_distance, tree[i].kth_distance);
  }
}

TEST(KnnOutlierTest, ResultsSortedStrongestFirst) {
  const Dataset ds = GenerateUniform(100, 3, 3);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 2;
  opts.num_outliers = 15;
  const std::vector<KnnOutlier> out = TopNKnnOutliers(metric, opts);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].kth_distance, out[i].kth_distance);
  }
}

TEST(KnnOutlierTest, NumOutliersLargerThanNClamps) {
  const Dataset ds = GenerateUniform(10, 2, 4);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 1;
  opts.num_outliers = 50;
  const std::vector<KnnOutlier> out = TopNKnnOutliers(metric, opts);
  EXPECT_EQ(out.size(), 10u);
  std::set<size_t> rows;
  for (const KnnOutlier& o : out) rows.insert(o.row);
  EXPECT_EQ(rows.size(), 10u);  // every point reported once
}

TEST(KnnOutlierTest, NoShuffleStillExact) {
  const Dataset ds = GenerateUniform(80, 3, 5);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 3;
  opts.num_outliers = 5;
  opts.shuffle_seed = 0;  // natural order
  const std::vector<KnnOutlier> got = TopNKnnOutliers(metric, opts);
  const std::vector<double> all = AllKthNeighborDistances(metric, 3);
  std::vector<double> sorted = all;
  std::sort(sorted.rbegin(), sorted.rend());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].kth_distance, sorted[i]);
  }
}

TEST(KnnOutlierDeathTest, InvalidK) {
  const Dataset ds = GenerateUniform(10, 2, 6);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 10;  // == n
  EXPECT_DEATH(TopNKnnOutliers(metric, opts), "k must be");
}

}  // namespace
}  // namespace hido
