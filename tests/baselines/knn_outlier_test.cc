#include "baselines/knn_outlier.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

TEST(KnnOutlierTest, FindsTheObviousGlobalOutlier) {
  Dataset ds(2);
  for (int i = 0; i < 50; ++i) {
    ds.AppendRow({0.5 + 0.001 * i, 0.5 - 0.001 * i});
  }
  ds.AppendRow({10.0, 10.0});  // row 50, far away
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 1;
  opts.num_outliers = 1;
  const std::vector<KnnOutlier> out = TopNKnnOutliers(metric, opts);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, 50u);
}

TEST(KnnOutlierTest, MatchesReferenceImplementation) {
  const Dataset ds = GenerateUniform(150, 4, 1);
  const DistanceMetric metric(ds);
  for (size_t k : {1u, 3u, 5u}) {
    KnnOutlierOptions opts;
    opts.k = k;
    opts.num_outliers = 10;
    const std::vector<KnnOutlier> got = TopNKnnOutliers(metric, opts);
    ASSERT_EQ(got.size(), 10u);

    const std::vector<double> all = AllKthNeighborDistances(metric, k);
    std::vector<double> sorted = all;
    std::sort(sorted.rbegin(), sorted.rend());
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_DOUBLE_EQ(got[i].kth_distance, sorted[i]) << "k=" << k;
      EXPECT_DOUBLE_EQ(got[i].kth_distance, all[got[i].row]);
    }
  }
}

TEST(KnnOutlierTest, VpTreePathAgreesWithNestedLoop) {
  const Dataset ds = GenerateUniform(120, 3, 2);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 2;
  opts.num_outliers = 8;
  const std::vector<KnnOutlier> loop = TopNKnnOutliers(metric, opts);
  opts.use_vptree = true;
  const std::vector<KnnOutlier> tree = TopNKnnOutliers(metric, opts);
  ASSERT_EQ(loop.size(), tree.size());
  for (size_t i = 0; i < loop.size(); ++i) {
    EXPECT_DOUBLE_EQ(loop[i].kth_distance, tree[i].kth_distance);
  }
}

TEST(KnnOutlierTest, ResultsSortedStrongestFirst) {
  const Dataset ds = GenerateUniform(100, 3, 3);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 2;
  opts.num_outliers = 15;
  const std::vector<KnnOutlier> out = TopNKnnOutliers(metric, opts);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].kth_distance, out[i].kth_distance);
  }
}

TEST(KnnOutlierTest, NumOutliersLargerThanNClamps) {
  const Dataset ds = GenerateUniform(10, 2, 4);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 1;
  opts.num_outliers = 50;
  const std::vector<KnnOutlier> out = TopNKnnOutliers(metric, opts);
  EXPECT_EQ(out.size(), 10u);
  std::set<size_t> rows;
  for (const KnnOutlier& o : out) rows.insert(o.row);
  EXPECT_EQ(rows.size(), 10u);  // every point reported once
}

TEST(KnnOutlierTest, NoShuffleStillExact) {
  const Dataset ds = GenerateUniform(80, 3, 5);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 3;
  opts.num_outliers = 5;
  opts.shuffle_seed = 0;  // natural order
  const std::vector<KnnOutlier> got = TopNKnnOutliers(metric, opts);
  const std::vector<double> all = AllKthNeighborDistances(metric, 3);
  std::vector<double> sorted = all;
  std::sort(sorted.rbegin(), sorted.rend());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].kth_distance, sorted[i]);
  }
}

TEST(KnnOutlierTest, ParallelMatchesSerialBitExactly) {
  const Dataset ds = GenerateUniform(400, 6, 3);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 4;
  opts.num_outliers = 15;
  opts.num_threads = 1;
  const std::vector<KnnOutlier> serial = TopNKnnOutliers(metric, opts);
  for (size_t threads : {2u, 4u, 8u, 0u}) {
    opts.num_threads = threads;
    const std::vector<KnnOutlier> parallel = TopNKnnOutliers(metric, opts);
    ASSERT_EQ(parallel.size(), serial.size()) << threads;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].row, serial[i].row) << "threads=" << threads;
      EXPECT_EQ(parallel[i].kth_distance, serial[i].kth_distance);
    }
  }
}

TEST(KnnOutlierTest, ExactScoreTiesBreakOnRowNotScanOrder) {
  // Two identical far pairs: rows 20/21 and 22/23 have the same 1-NN
  // distance, so with num_outliers=3 one tied pair member must win by the
  // (score desc, row asc) total order — independent of shuffle seed.
  Dataset ds(2);
  for (int i = 0; i < 20; ++i) ds.AppendRow({0.0, 0.001 * i});
  ds.AppendRow({50.0, 0.0});
  ds.AppendRow({53.0, 0.0});
  ds.AppendRow({50.0, 30.0});
  ds.AppendRow({53.0, 30.0});
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 1;
  opts.num_outliers = 3;
  for (uint64_t seed : {0u, 1u, 7u, 99u}) {
    opts.shuffle_seed = seed;
    const std::vector<KnnOutlier> out = TopNKnnOutliers(metric, opts);
    ASSERT_EQ(out.size(), 3u) << seed;
    EXPECT_EQ(out[0].row, 20u) << seed;
    EXPECT_EQ(out[1].row, 21u) << seed;
    EXPECT_EQ(out[2].row, 22u) << seed;  // ties with 23; lower row wins
  }
}

TEST(KnnOutlierTest, PreCancelledTokenYieldsEmptyIncomplete) {
  const Dataset ds = GenerateUniform(100, 3, 5);
  const DistanceMetric metric(ds);
  StopToken token;
  token.RequestCancel();
  KnnOutlierOptions opts;
  opts.k = 2;
  opts.num_outliers = 5;
  opts.stop = &token;
  RunStatus status;
  const std::vector<KnnOutlier> out = TopNKnnOutliers(metric, opts, &status);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(status.completed);
  EXPECT_EQ(status.stop_cause, StopCause::kCancelled);
}

TEST(KnnOutlierTest, FailpointMidScanReportsValidPartial) {
  const Dataset ds = GenerateUniform(200, 4, 8);
  const DistanceMetric metric(ds);
  StopToken token;
  token.ArmFailpoint(50);  // stop after ~50 of 200 points
  KnnOutlierOptions opts;
  opts.k = 3;
  opts.num_outliers = 10;
  opts.stop = &token;
  RunStatus status;
  const std::vector<KnnOutlier> out = TopNKnnOutliers(metric, opts, &status);
  EXPECT_FALSE(status.completed);
  EXPECT_EQ(status.stop_cause, StopCause::kFailpoint);
  // Partial but valid: scores exact, sorted strongest first.
  const std::vector<double> all = AllKthNeighborDistances(metric, 3);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].kth_distance, all[out[i].row]);
    if (i > 0) {
      EXPECT_GE(out[i - 1].kth_distance, out[i].kth_distance);
    }
  }
}

TEST(KnnOutlierDeathTest, InvalidK) {
  const Dataset ds = GenerateUniform(10, 2, 6);
  const DistanceMetric metric(ds);
  KnnOutlierOptions opts;
  opts.k = 10;  // == n
  EXPECT_DEATH(TopNKnnOutliers(metric, opts), "k must be");
}

}  // namespace
}  // namespace hido
