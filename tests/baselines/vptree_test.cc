#include "baselines/vptree.h"

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

TEST(VpTreeTest, MatchesBruteForceOnRandomData) {
  const Dataset ds = GenerateUniform(200, 3, 1);
  const DistanceMetric metric(ds);
  const VpTree tree(metric);
  for (size_t q = 0; q < 200; q += 7) {
    for (size_t k : {1u, 3u, 10u}) {
      const std::vector<Neighbor> got = tree.Nearest(q, k);
      const std::vector<Neighbor> want = BruteForceNearest(metric, q, k);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        // Distances must match exactly; indices may differ under ties.
        EXPECT_DOUBLE_EQ(got[i].distance, want[i].distance)
            << "q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(VpTreeTest, NeighborsSortedAscendingAndExcludeQuery) {
  const Dataset ds = GenerateUniform(100, 4, 2);
  const DistanceMetric metric(ds);
  const VpTree tree(metric);
  const std::vector<Neighbor> nn = tree.Nearest(17, 12);
  ASSERT_EQ(nn.size(), 12u);
  for (size_t i = 0; i < nn.size(); ++i) {
    EXPECT_NE(nn[i].index, 17u);
    if (i > 0) {
      EXPECT_GE(nn[i].distance, nn[i - 1].distance);
    }
  }
}

TEST(VpTreeTest, KClampedToNMinusOne) {
  const Dataset ds = GenerateUniform(5, 2, 3);
  const DistanceMetric metric(ds);
  const VpTree tree(metric);
  EXPECT_EQ(tree.Nearest(0, 100).size(), 4u);
  EXPECT_TRUE(tree.Nearest(0, 0).empty());
}

TEST(VpTreeTest, SinglePointDataset) {
  const Dataset ds = Dataset::FromRows({{1.0, 2.0}});
  const DistanceMetric metric(ds);
  const VpTree tree(metric);
  EXPECT_TRUE(tree.Nearest(0, 3).empty());
}

TEST(VpTreeTest, DuplicatePointsHandled) {
  Dataset ds(2);
  for (int i = 0; i < 20; ++i) ds.AppendRow({0.5, 0.5});
  const DistanceMetric metric(ds);
  const VpTree tree(metric);
  const std::vector<Neighbor> nn = tree.Nearest(0, 5);
  ASSERT_EQ(nn.size(), 5u);
  for (const Neighbor& n : nn) EXPECT_DOUBLE_EQ(n.distance, 0.0);
}

TEST(VpTreeTest, CountWithinMatchesLinearScan) {
  const Dataset ds = GenerateUniform(150, 3, 5);
  const DistanceMetric metric(ds);
  const VpTree tree(metric);
  for (size_t q = 0; q < 150; q += 11) {
    for (double radius : {0.05, 0.2, 0.5}) {
      size_t expected = 0;
      for (size_t j = 0; j < 150; ++j) {
        if (j != q && metric.Distance(q, j) <= radius) ++expected;
      }
      EXPECT_EQ(tree.CountWithin(q, radius, 0), expected)
          << "q=" << q << " r=" << radius;
    }
  }
}

TEST(VpTreeTest, CountWithinEarlyStopNeverUndercounts) {
  const Dataset ds = GenerateUniform(200, 2, 7);
  const DistanceMetric metric(ds);
  const VpTree tree(metric);
  const size_t full = tree.CountWithin(0, 0.5, 0);
  const size_t stopped = tree.CountWithin(0, 0.5, 3);
  if (full > 3) {
    EXPECT_GT(stopped, 3u);  // stops only after exceeding the cap
  } else {
    EXPECT_EQ(stopped, full);
  }
}

TEST(BruteForceNearestTest, ExactOnTinyInstance) {
  const Dataset ds =
      Dataset::FromRows({{0.0}, {1.0}, {3.0}, {7.0}});
  DistanceMetric::Options opts;
  opts.normalize = false;
  const DistanceMetric metric(ds, opts);
  const std::vector<Neighbor> nn = BruteForceNearest(metric, 0, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].index, 1u);
  EXPECT_DOUBLE_EQ(nn[0].distance, 1.0);
  EXPECT_EQ(nn[1].index, 2u);
  EXPECT_DOUBLE_EQ(nn[1].distance, 3.0);
}

}  // namespace
}  // namespace hido
