#include "baselines/db_outlier.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

TEST(DbOutlierTest, IsolatedPointIsAnOutlier) {
  Dataset ds(2);
  for (int i = 0; i < 30; ++i) {
    ds.AppendRow({0.5 + 0.002 * i, 0.5});
  }
  ds.AppendRow({10.0, 10.0});  // row 30
  DistanceMetric::Options mopts;
  mopts.normalize = false;
  const DistanceMetric metric(ds, mopts);
  DbOutlierOptions opts;
  opts.lambda = 1.0;
  opts.max_neighbors = 2;
  const std::vector<size_t> out = DbOutliers(metric, opts);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 30u);
}

TEST(DbOutlierTest, VpTreePathAgrees) {
  const Dataset ds = GenerateUniform(150, 3, 1);
  const DistanceMetric metric(ds);
  DbOutlierOptions opts;
  opts.lambda = 0.25;
  opts.max_neighbors = 3;
  const std::vector<size_t> loop = DbOutliers(metric, opts);
  opts.use_vptree = true;
  const std::vector<size_t> tree = DbOutliers(metric, opts);
  EXPECT_EQ(loop, tree);
}

TEST(DbOutlierTest, MatchesDefinitionExactly) {
  const Dataset ds = GenerateUniform(100, 2, 2);
  const DistanceMetric metric(ds);
  DbOutlierOptions opts;
  opts.lambda = 0.15;
  opts.max_neighbors = 4;
  const std::vector<size_t> out = DbOutliers(metric, opts);
  for (size_t i = 0; i < 100; ++i) {
    size_t neighbors = 0;
    for (size_t j = 0; j < 100; ++j) {
      if (j != i && metric.Distance(i, j) <= opts.lambda) ++neighbors;
    }
    const bool is_outlier = neighbors <= opts.max_neighbors;
    const bool reported =
        std::find(out.begin(), out.end(), i) != out.end();
    EXPECT_EQ(is_outlier, reported) << "row " << i;
  }
}

TEST(DbOutlierTest, LambdaSensitivityWindowCollapsesWithDimensionality) {
  // The paper's criticism made concrete: the fraction of lambda values (as
  // distance quantiles) yielding a "modest" outlier count shrinks as d
  // grows — tiny lambda changes flip between all-outliers and none.
  auto outlier_fraction_at_quantile = [](size_t d, double q) {
    const Dataset ds = GenerateUniform(200, d, 33);
    const DistanceMetric metric(ds);
    Rng rng(7);
    const double lambda = EstimateLambda(metric, q, 2000, rng);
    DbOutlierOptions opts;
    opts.lambda = std::max(lambda, 1e-9);
    opts.max_neighbors = 5;
    return static_cast<double>(DbOutliers(metric, opts).size()) / 200.0;
  };
  // In 100 dimensions the jump between quantile 0.01 and 0.10 is drastic:
  // nearly everything vs nearly nothing.
  const double low_q = outlier_fraction_at_quantile(100, 0.01);
  const double high_q = outlier_fraction_at_quantile(100, 0.10);
  EXPECT_GT(low_q, 0.7);
  EXPECT_LT(high_q, 0.3);
  EXPECT_GT(low_q - high_q, 0.5);
}

TEST(EstimateLambdaTest, MonotoneInQuantile) {
  const Dataset ds = GenerateUniform(100, 5, 3);
  const DistanceMetric metric(ds);
  Rng rng(1);
  const double l25 = EstimateLambda(metric, 0.25, 3000, rng);
  const double l75 = EstimateLambda(metric, 0.75, 3000, rng);
  EXPECT_GT(l25, 0.0);
  EXPECT_LT(l25, l75);
}

TEST(EstimateLambdaTest, ExtremesSpanTheDistanceRange) {
  const Dataset ds = GenerateUniform(50, 3, 4);
  const DistanceMetric metric(ds);
  Rng rng(2);
  const double lo = EstimateLambda(metric, 0.0, 1000, rng);
  const double hi = EstimateLambda(metric, 1.0, 1000, rng);
  EXPECT_LT(lo, hi);
}

TEST(DbOutlierTest, ParallelMatchesSerialExactly) {
  const Dataset ds = GenerateUniform(300, 4, 13);
  const DistanceMetric metric(ds);
  DbOutlierOptions opts;
  opts.lambda = 0.4;
  opts.max_neighbors = 3;
  opts.num_threads = 1;
  const std::vector<size_t> serial = DbOutliers(metric, opts);
  for (size_t threads : {2u, 4u, 0u}) {
    opts.num_threads = threads;
    EXPECT_EQ(DbOutliers(metric, opts), serial) << "threads=" << threads;
  }
}

TEST(DbOutlierTest, CancelledRunReportsOnlyJudgedPoints) {
  const Dataset ds = GenerateUniform(200, 3, 14);
  const DistanceMetric metric(ds);
  DbOutlierOptions opts;
  opts.lambda = 0.05;  // small radius: many outliers
  opts.max_neighbors = 1;
  const std::vector<size_t> full = DbOutliers(metric, opts);

  StopToken token;
  token.ArmFailpoint(60);
  opts.stop = &token;
  RunStatus status;
  const std::vector<size_t> partial = DbOutliers(metric, opts, &status);
  EXPECT_FALSE(status.completed);
  EXPECT_EQ(status.stop_cause, StopCause::kFailpoint);
  // Ascending, no duplicates, and a subset of the full answer — a skipped
  // point is simply unreported, never misreported.
  EXPECT_TRUE(std::is_sorted(partial.begin(), partial.end()));
  EXPECT_TRUE(std::includes(full.begin(), full.end(), partial.begin(),
                            partial.end()));
  EXPECT_LT(partial.size(), full.size());
}

TEST(DbOutlierDeathTest, NonPositiveLambda) {
  const Dataset ds = GenerateUniform(10, 2, 5);
  const DistanceMetric metric(ds);
  DbOutlierOptions opts;
  opts.lambda = 0.0;
  EXPECT_DEATH(DbOutliers(metric, opts), "lambda");
}

}  // namespace
}  // namespace hido
