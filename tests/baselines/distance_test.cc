#include "baselines/distance.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/generators/synthetic.h"

namespace hido {
namespace {

TEST(DistanceMetricTest, EuclideanWithoutNormalization) {
  const Dataset ds = Dataset::FromRows({{0.0, 0.0}, {3.0, 4.0}});
  DistanceMetric::Options opts;
  opts.normalize = false;
  const DistanceMetric metric(ds, opts);
  EXPECT_DOUBLE_EQ(metric.Distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(metric.Distance(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(metric.Distance(0, 0), 0.0);
}

TEST(DistanceMetricTest, ManhattanDistance) {
  const Dataset ds = Dataset::FromRows({{0.0, 0.0}, {3.0, 4.0}});
  DistanceMetric::Options opts;
  opts.p = 1.0;
  opts.normalize = false;
  const DistanceMetric metric(ds, opts);
  EXPECT_DOUBLE_EQ(metric.Distance(0, 1), 7.0);
}

TEST(DistanceMetricTest, NormalizationRemovesScaleDominance) {
  // Second column has 1000x the scale; normalized distances treat both
  // columns equally.
  const Dataset ds =
      Dataset::FromRows({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1000.0}});
  const DistanceMetric metric(ds);  // normalize = true
  EXPECT_NEAR(metric.Distance(0, 1), metric.Distance(0, 2), 1e-12);
}

TEST(DistanceMetricTest, ConstantColumnContributesZero) {
  const Dataset ds = Dataset::FromRows({{5.0, 1.0}, {5.0, 2.0}});
  const DistanceMetric metric(ds);
  EXPECT_DOUBLE_EQ(metric.Distance(0, 1), 1.0);  // only column 1 counts
}

TEST(DistanceMetricTest, MissingDimensionsRescaled) {
  // Dixon's convention: skip missing dims, scale by d / present.
  Dataset ds(2);
  ds.AppendRow({0.0, 0.0});
  ds.AppendRow({1.0, std::numeric_limits<double>::quiet_NaN()});
  DistanceMetric::Options opts;
  opts.normalize = false;
  const DistanceMetric metric(ds, opts);
  // Present dims: 1 of 2; sum = 1, rescaled = 2, sqrt(2).
  EXPECT_NEAR(metric.Distance(0, 1), std::sqrt(2.0), 1e-12);
}

TEST(DistanceMetricTest, NoSharedDimensionIsInfinite) {
  Dataset ds(2);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ds.AppendRow({0.0, nan});
  ds.AppendRow({nan, 1.0});
  DistanceMetric::Options opts;
  opts.normalize = false;
  const DistanceMetric metric(ds, opts);
  EXPECT_TRUE(std::isinf(metric.Distance(0, 1)));
}

TEST(DistanceMetricTest, DistancesFromMatchesPairwise) {
  const Dataset ds = GenerateUniform(30, 4, 3);
  const DistanceMetric metric(ds);
  const std::vector<double> row = metric.DistancesFrom(5);
  ASSERT_EQ(row.size(), 30u);
  for (size_t j = 0; j < 30; ++j) {
    EXPECT_DOUBLE_EQ(row[j], metric.Distance(5, j));
  }
}

TEST(DistanceMetricTest, TriangleInequalityOnRandomData) {
  const Dataset ds = GenerateUniform(20, 5, 5);
  const DistanceMetric metric(ds);
  for (size_t a = 0; a < 20; ++a) {
    for (size_t b = 0; b < 20; ++b) {
      for (size_t c = 0; c < 20; ++c) {
        EXPECT_LE(metric.Distance(a, c),
                  metric.Distance(a, b) + metric.Distance(b, c) + 1e-9);
      }
    }
  }
}

TEST(DistanceMetricTest, ConcentrationInHighDimensions) {
  // The phenomenon the paper leans on: relative contrast
  // (max - min) / min of pairwise distances collapses as d grows.
  auto contrast = [](size_t d) {
    const Dataset ds = GenerateUniform(100, d, 7);
    const DistanceMetric metric(ds);
    double min_d = std::numeric_limits<double>::infinity();
    double max_d = 0.0;
    for (size_t i = 0; i < 100; ++i) {
      for (size_t j = i + 1; j < 100; ++j) {
        min_d = std::min(min_d, metric.Distance(i, j));
        max_d = std::max(max_d, metric.Distance(i, j));
      }
    }
    return (max_d - min_d) / min_d;
  };
  EXPECT_GT(contrast(2), 4.0 * contrast(200));
}

TEST(DistanceMetricDeathTest, InvalidP) {
  const Dataset ds = Dataset::FromRows({{1.0}});
  DistanceMetric::Options opts;
  opts.p = 0.5;
  EXPECT_DEATH(DistanceMetric(ds, opts), "p_");
}

}  // namespace
}  // namespace hido
