#include "grid/sparsity.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hido {
namespace {

TEST(SparsityModelTest, ExpectedCountMatchesEquationOne) {
  const SparsityModel model(10000, 10);
  EXPECT_DOUBLE_EQ(model.ExpectedCount(1), 1000.0);
  EXPECT_DOUBLE_EQ(model.ExpectedCount(2), 100.0);
  EXPECT_DOUBLE_EQ(model.ExpectedCount(4), 1.0);
}

TEST(SparsityModelTest, StddevMatchesEquationOne) {
  const SparsityModel model(10000, 10);
  const double fk = 0.01;  // k = 2
  EXPECT_NEAR(model.CountStddev(2),
              std::sqrt(10000.0 * fk * (1.0 - fk)), 1e-12);
}

TEST(SparsityModelTest, CoefficientSigns) {
  const SparsityModel model(10000, 10);
  // At the expected count the coefficient is exactly 0.
  EXPECT_NEAR(model.Coefficient(100, 2), 0.0, 1e-12);
  // Below expectation: negative; above: positive.
  EXPECT_LT(model.Coefficient(10, 2), 0.0);
  EXPECT_GT(model.Coefficient(500, 2), 0.0);
}

TEST(SparsityModelTest, CoefficientIsZScore) {
  const SparsityModel model(10000, 10);
  const double expected = model.ExpectedCount(2);
  const double stddev = model.CountStddev(2);
  EXPECT_NEAR(model.Coefficient(42, 2), (42.0 - expected) / stddev, 1e-12);
}

TEST(SparsityModelTest, EmptyCubeFormula) {
  // S_empty(k) = -sqrt(N / (phi^k - 1)) per section 2.4.
  const SparsityModel model(10000, 10);
  EXPECT_NEAR(model.EmptyCubeCoefficient(3),
              -std::sqrt(10000.0 / (1000.0 - 1.0)), 1e-12);
}

TEST(SparsityModelTest, EmptyCubeMatchesCoefficientOfZero) {
  const SparsityModel model(5000, 8);
  for (size_t k = 1; k <= 4; ++k) {
    EXPECT_NEAR(model.EmptyCubeCoefficient(k), model.Coefficient(0, k),
                1e-9);
  }
}

TEST(SparsityModelTest, MoreDimensionsMakeEmptyLessSurprising) {
  // As k grows, phi^k grows, so an empty cube drifts toward S = 0: high
  // dimensionality makes emptiness unremarkable (the paper's core point).
  const SparsityModel model(10000, 10);
  double prev = model.EmptyCubeCoefficient(1);
  for (size_t k = 2; k <= 6; ++k) {
    const double s = model.EmptyCubeCoefficient(k);
    EXPECT_GT(s, prev);
    EXPECT_LT(s, 0.0);
    prev = s;
  }
}

TEST(SparsityModelTest, CoefficientWithProbabilityGeneralizes) {
  const SparsityModel model(10000, 10);
  // With probability f^k it reduces to Coefficient.
  EXPECT_NEAR(model.CoefficientWithProbability(42, 0.01),
              model.Coefficient(42, 2), 1e-12);
}

TEST(SparsityModelTest, SignificanceIsNormalCdf) {
  const SparsityModel model(1000, 10);
  EXPECT_NEAR(model.Significance(-3.0), 0.00135, 1e-4);
  EXPECT_NEAR(model.Significance(0.0), 0.5, 1e-12);
}

TEST(SparsityModelDeathTest, InvalidArguments) {
  EXPECT_DEATH(SparsityModel(0, 10), "num_points");
  EXPECT_DEATH(SparsityModel(10, 1), "phi");
  const SparsityModel model(10, 2);
  EXPECT_DEATH(model.ExpectedCount(0), "k >= 1");
  EXPECT_DEATH(model.CoefficientWithProbability(1, 0.0), "probability");
  EXPECT_DEATH(model.CoefficientWithProbability(1, 1.0), "probability");
}

TEST(SparsityModelTest, ExactSignificanceProperties) {
  const SparsityModel model(1000, 5);
  // Exact tail in [0,1], monotone in count.
  double prev = 0.0;
  for (size_t count = 0; count <= 60; count += 5) {
    const double sig = model.ExactSignificance(count, 2);
    EXPECT_GE(sig, prev - 1e-15);
    EXPECT_LE(sig, 1.0);
    prev = sig;
  }
  // At the expected count (1000/25 = 40), the tail is ~0.5.
  EXPECT_NEAR(model.ExactSignificance(40, 2), 0.5, 0.06);
  // For an empty cube the exact tail equals (1 - f^k)^N.
  EXPECT_NEAR(model.ExactSignificance(0, 2), std::pow(0.96, 1000), 1e-18);
}

TEST(RecommendProjectionDimTest, PaperFormula) {
  // k* = floor(log_phi(N / s^2 + 1)).
  // N = 10000, phi = 10, s = -3: log10(10000/9 + 1) = log10(1112.1) = 3.04
  EXPECT_EQ(RecommendProjectionDim(10000, 10, -3.0), 3u);
  // N = 1000: log10(112.1) = 2.05 -> 2.
  EXPECT_EQ(RecommendProjectionDim(1000, 10, -3.0), 2u);
  // N = 100: log10(12.1) = 1.08 -> 1.
  EXPECT_EQ(RecommendProjectionDim(100, 10, -3.0), 1u);
}

TEST(RecommendProjectionDimTest, NeverBelowOne) {
  EXPECT_EQ(RecommendProjectionDim(5, 10, -3.0), 1u);
  EXPECT_EQ(RecommendProjectionDim(1, 10, -0.5), 1u);
}

TEST(RecommendProjectionDimTest, GrowsWithNAndShrinksWithPhi) {
  EXPECT_LE(RecommendProjectionDim(1000, 10, -3.0),
            RecommendProjectionDim(100000, 10, -3.0));
  EXPECT_GE(RecommendProjectionDim(100000, 5, -3.0),
            RecommendProjectionDim(100000, 20, -3.0));
}

TEST(RecommendProjectionDimTest, EmptyCubeAtKStarIsAtLeastAsNegativeAsS) {
  // Consistency: at the recommended k*, an empty cube's sparsity is <= s
  // ("the rounding makes the effective coefficient slightly more negative").
  for (size_t n : {500u, 5000u, 50000u}) {
    for (size_t phi : {5u, 10u}) {
      const double s = -3.0;
      const size_t k = RecommendProjectionDim(n, phi, s);
      const SparsityModel model(n, phi);
      EXPECT_LE(model.EmptyCubeCoefficient(k), s + 1e-9)
          << "n=" << n << " phi=" << phi << " k=" << k;
    }
  }
}

TEST(RecommendProjectionDimDeathTest, PositiveSAborts) {
  EXPECT_DEATH(RecommendProjectionDim(100, 10, 1.0), "negative");
}

}  // namespace
}  // namespace hido
