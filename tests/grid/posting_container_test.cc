#include "grid/posting_container.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitset.h"
#include "common/rng.h"

namespace hido {
namespace {

std::vector<uint32_t> RandomSortedIds(Rng& rng, size_t universe,
                                      double density) {
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < universe; ++i) {
    if (rng.Bernoulli(density)) ids.push_back(static_cast<uint32_t>(i));
  }
  return ids;
}

// Reference intersection count on sorted id vectors.
size_t ReferenceAndCount(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

TEST(PostingContainerTest, ThresholdDecidesRepresentation) {
  const std::vector<uint32_t> ids = {1, 5, 9};
  const PostingContainer array = PostingContainer::FromIds(ids, 64, 4);
  EXPECT_EQ(array.kind(), PostingContainer::Kind::kArray);
  const PostingContainer bitmap = PostingContainer::FromIds(ids, 64, 3);
  EXPECT_EQ(bitmap.kind(), PostingContainer::Kind::kBitmap);
  for (const PostingContainer* c : {&array, &bitmap}) {
    EXPECT_EQ(c->universe(), 64u);
    EXPECT_EQ(c->cardinality(), 3u);
    EXPECT_EQ(c->ToIds(), ids);
    EXPECT_TRUE(c->Contains(5));
    EXPECT_FALSE(c->Contains(6));
  }
}

TEST(PostingContainerTest, FromBitmapMaySparsify) {
  DynamicBitset bits(200);
  bits.Set(3);
  bits.Set(150);
  const PostingContainer sparse = PostingContainer::FromBitmap(bits, 2, 10);
  EXPECT_EQ(sparse.kind(), PostingContainer::Kind::kArray);
  EXPECT_EQ(sparse.ToIds(), std::vector<uint32_t>({3, 150}));
  const PostingContainer dense = PostingContainer::FromBitmap(bits, 2, 0);
  EXPECT_EQ(dense.kind(), PostingContainer::Kind::kBitmap);
  EXPECT_EQ(dense.ToIds(), std::vector<uint32_t>({3, 150}));
}

TEST(PostingContainerTest, EmptyContainer) {
  const PostingContainer empty = PostingContainer::FromIds({}, 100, 5);
  EXPECT_EQ(empty.kind(), PostingContainer::Kind::kArray);
  EXPECT_EQ(empty.cardinality(), 0u);
  EXPECT_TRUE(empty.ToIds().empty());
  DynamicBitset dst(100);
  dst.SetAll();
  EXPECT_EQ(empty.AndInto(dst), 0u);
  EXPECT_EQ(dst.Count(), 0u);
}

// All four representation pairings compute the same intersection as the
// sorted-merge reference.
TEST(PostingContainerTest, AndCountAgreesAcrossAllPairings) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t universe = 50 + rng.UniformIndex(300);
    const std::vector<uint32_t> a = RandomSortedIds(rng, universe, 0.2);
    const std::vector<uint32_t> b = RandomSortedIds(rng, universe, 0.5);
    const size_t expected = ReferenceAndCount(a, b);

    const PostingContainer a_arr =
        PostingContainer::FromIds(a, universe, universe + 1);
    const PostingContainer a_bmp = PostingContainer::FromIds(a, universe, 0);
    const PostingContainer b_arr =
        PostingContainer::FromIds(b, universe, universe + 1);
    const PostingContainer b_bmp = PostingContainer::FromIds(b, universe, 0);

    EXPECT_EQ(a_arr.AndCount(b_arr), expected);
    EXPECT_EQ(a_arr.AndCount(b_bmp), expected);
    EXPECT_EQ(a_bmp.AndCount(b_arr), expected);
    EXPECT_EQ(a_bmp.AndCount(b_bmp), expected);
    // Symmetric.
    EXPECT_EQ(b_arr.AndCount(a_bmp), expected);
    EXPECT_EQ(b_bmp.AndCount(a_arr), expected);
  }
}

TEST(PostingContainerTest, AndIntoAndMaterializeAgreeWithBitsetOps) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t universe = 64 + rng.UniformIndex(200);
    const std::vector<uint32_t> member_ids =
        RandomSortedIds(rng, universe, 0.3);
    DynamicBitset current(universe);
    for (size_t i = 0; i < universe; ++i) {
      if (rng.Bernoulli(0.6)) current.Set(i);
    }
    DynamicBitset expected = current;
    {
      DynamicBitset members(universe);
      for (uint32_t id : member_ids) members.Set(id);
      expected.AndWith(members);
    }
    for (size_t threshold : {size_t{0}, universe + 1}) {
      const PostingContainer container =
          PostingContainer::FromIds(member_ids, universe, threshold);
      DynamicBitset materialized(universe);
      materialized.SetAll();
      container.MaterializeInto(materialized);
      EXPECT_EQ(materialized.Count(), container.cardinality());
      DynamicBitset dst = current;
      EXPECT_EQ(container.AndInto(dst), expected.Count());
      EXPECT_EQ(dst, expected);
      EXPECT_EQ(container.AndCountWith(current), expected.Count());
    }
  }
}

TEST(PostingContainerTest, AppendIdsAppendsInOrder) {
  const PostingContainer c = PostingContainer::FromIds({2, 64, 65}, 128, 10);
  std::vector<uint32_t> out = {1};
  c.AppendIds(out);
  EXPECT_EQ(out, std::vector<uint32_t>({1, 2, 64, 65}));
}

}  // namespace
}  // namespace hido
