#include "grid/grid_model.h"

#include <limits>

#include <gtest/gtest.h>

#include "common/run_control.h"
#include "common/status.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

TEST(GridModelTest, BasicShape) {
  const Dataset ds = GenerateUniform(200, 4, 3);
  GridModel::Options opts;
  opts.phi = 5;
  const GridModel grid = GridModel::Build(ds, opts);
  EXPECT_EQ(grid.num_points(), 200u);
  EXPECT_EQ(grid.num_dims(), 4u);
  EXPECT_EQ(grid.phi(), 5u);
}

TEST(GridModelTest, CellsMatchQuantizer) {
  const Dataset ds = GenerateUniform(100, 2, 5);
  GridModel::Options opts;
  opts.phi = 4;
  const GridModel grid = GridModel::Build(ds, opts);
  for (size_t r = 0; r < 100; ++r) {
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(grid.Cell(r, d),
                grid.quantizer().CellOf(d, ds.Get(r, d)));
    }
  }
}

TEST(GridModelTest, MembershipsPartitionThePoints) {
  const Dataset ds = GenerateUniform(333, 3, 7);
  GridModel::Options opts;
  opts.phi = 6;
  const GridModel grid = GridModel::Build(ds, opts);
  for (size_t d = 0; d < 3; ++d) {
    size_t total = 0;
    for (uint32_t cell = 0; cell < 6; ++cell) {
      const PostingContainer& members = grid.Container(d, cell);
      EXPECT_EQ(members.cardinality(), grid.RangeCardinality(d, cell));
      EXPECT_EQ(members.ToIds().size(), members.cardinality());
      total += members.cardinality();
      // Id view agrees with membership tests and the cell assignment.
      for (uint32_t row : members.ToIds()) {
        EXPECT_TRUE(members.Contains(row));
        EXPECT_EQ(grid.Cell(row, d), cell);
      }
    }
    EXPECT_EQ(total, 333u);  // every point in exactly one range per dim
  }
}

TEST(GridModelTest, ContainerRepresentationFollowsThreshold) {
  const Dataset ds = GenerateUniform(256, 2, 17);
  // All-bitmap grid (threshold 0 means no range is "sparse enough").
  GridModel::Options dense_opts;
  dense_opts.phi = 4;
  dense_opts.array_threshold = 0;
  const GridModel dense = GridModel::Build(ds, dense_opts);
  // All-array grid: every range is below rows + 1.
  GridModel::Options sparse_opts;
  sparse_opts.phi = 4;
  sparse_opts.array_threshold = 257;
  const GridModel sparse = GridModel::Build(ds, sparse_opts);
  for (size_t d = 0; d < 2; ++d) {
    for (uint32_t cell = 0; cell < 4; ++cell) {
      EXPECT_EQ(dense.Container(d, cell).kind(),
                PostingContainer::Kind::kBitmap);
      EXPECT_EQ(sparse.Container(d, cell).kind(),
                PostingContainer::Kind::kArray);
      // Representation is an encoding choice: identical member sets.
      EXPECT_EQ(dense.Container(d, cell).ToIds(),
                sparse.Container(d, cell).ToIds());
    }
  }
  EXPECT_EQ(dense.array_threshold(), 0u);
  EXPECT_EQ(sparse.array_threshold(), 257u);
}

TEST(GridModelTest, AutoThresholdResolvesToRowsOver32) {
  const Dataset ds = GenerateUniform(320, 1, 19);
  GridModel::Options opts;
  opts.phi = 4;
  const GridModel grid = GridModel::Build(ds, opts);
  EXPECT_EQ(grid.array_threshold(), 10u);
}

TEST(GridModelTest, RangeFractionsSumToOne) {
  const Dataset ds = GenerateUniform(500, 2, 11);
  GridModel::Options opts;
  opts.phi = 10;
  const GridModel grid = GridModel::Build(ds, opts);
  for (size_t d = 0; d < 2; ++d) {
    double sum = 0.0;
    for (uint32_t cell = 0; cell < 10; ++cell) {
      sum += grid.RangeFraction(d, cell);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(GridModelTest, MissingValuesGetMissingCell) {
  Dataset ds(2);
  ds.AppendRow({0.1, 0.5});
  ds.AppendRow({std::numeric_limits<double>::quiet_NaN(), 0.7});
  ds.AppendRow({0.9, 0.2});
  GridModel::Options opts;
  opts.phi = 2;
  const GridModel grid = GridModel::Build(ds, opts);
  EXPECT_EQ(grid.Cell(1, 0), GridModel::kMissingCell);
  EXPECT_NE(grid.Cell(1, 1), GridModel::kMissingCell);
  // Missing rows appear in no membership set of that dim.
  size_t total = 0;
  for (uint32_t cell = 0; cell < 2; ++cell) {
    total += grid.RangeCardinality(0, cell);
  }
  EXPECT_EQ(total, 2u);
}

TEST(GridModelTest, CoversChecksAllConditions) {
  Dataset ds(2);
  ds.AppendRow({0.1, 0.9});
  ds.AppendRow({0.9, 0.9});
  GridModel::Options opts;
  opts.phi = 2;
  const GridModel grid = GridModel::Build(ds, opts);
  const uint32_t c00 = grid.Cell(0, 0);
  const uint32_t c01 = grid.Cell(0, 1);
  EXPECT_TRUE(grid.Covers(0, {{0, c00}, {1, c01}}));
  EXPECT_FALSE(grid.Covers(1, {{0, c00}, {1, c01}}));
  EXPECT_TRUE(grid.Covers(1, {{1, c01}}));
}

TEST(GridModelTest, CoversNeverMatchesMissing) {
  Dataset ds(1);
  ds.AppendRow({std::numeric_limits<double>::quiet_NaN()});
  ds.AppendRow({0.5});
  GridModel::Options opts;
  opts.phi = 2;
  const GridModel grid = GridModel::Build(ds, opts);
  for (uint32_t cell = 0; cell < 2; ++cell) {
    EXPECT_FALSE(grid.Covers(0, {{0, cell}}));
  }
}

TEST(GridModelTest, StopTokenFailpointAbortsBuild) {
  const Dataset ds = GenerateUniform(500, 8, 7);
  GridModel::Options opts;
  opts.phi = 5;
  StopToken token;
  token.ArmFailpoint(3);  // entry poll + per-dimension polls; fires early
  const Result<GridModel> r = GridModel::Build(ds, opts, &token);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(token.cause(), StopCause::kFailpoint);
}

TEST(GridModelTest, PreCancelledTokenAbortsBeforeAnyWork) {
  const Dataset ds = GenerateUniform(50, 2, 7);
  GridModel::Options opts;
  opts.phi = 5;
  StopToken token;
  token.RequestCancel();
  const Result<GridModel> r = GridModel::Build(ds, opts, &token);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(GridModelTest, UnfiredStopTokenBuildMatchesLegacyBuild) {
  const Dataset ds = GenerateUniform(300, 5, 11);
  GridModel::Options opts;
  opts.phi = 4;
  const GridModel legacy = GridModel::Build(ds, opts);
  StopToken token;
  const Result<GridModel> r = GridModel::Build(ds, opts, &token);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const GridModel& grid = r.value();
  ASSERT_EQ(grid.num_points(), legacy.num_points());
  ASSERT_EQ(grid.num_dims(), legacy.num_dims());
  for (size_t row = 0; row < grid.num_points(); ++row) {
    for (size_t dim = 0; dim < grid.num_dims(); ++dim) {
      ASSERT_EQ(grid.Cell(row, dim), legacy.Cell(row, dim))
          << "row " << row << " dim " << dim;
    }
  }
  EXPECT_FALSE(token.stop_requested());
}

TEST(GridModelDeathTest, BadCellAborts) {
  const Dataset ds = GenerateUniform(10, 1, 13);
  GridModel::Options opts;
  opts.phi = 2;
  const GridModel grid = GridModel::Build(ds, opts);
  EXPECT_DEATH(grid.Container(0, 5), "cell");
}

}  // namespace
}  // namespace hido
