// Concurrency stress for SharedCubeCache: many ParallelFor workers, each
// with its own CubeCounter, hammer one shared cache. Run under
// ThreadSanitizer (cmake -DHIDO_SANITIZE=thread) to check the lock
// striping; under any build it checks the accounting identities:
//
//   * every worker's counts match a single-threaded reference counter,
//   * cache hits + misses == total lookups issued,
//   * absorbed per-worker stats sum exactly (no lost updates).

#include <atomic>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "data/generators/synthetic.h"
#include "grid/cube_counter.h"
#include "grid/shared_cube_cache.h"

namespace hido {
namespace {

GridModel MakeGrid(size_t n, size_t d, size_t phi, uint64_t seed) {
  GridModel::Options opts;
  opts.phi = phi;
  return GridModel::Build(GenerateUniform(n, d, seed), opts);
}

std::vector<DimRange> RandomConditions(const GridModel& grid, size_t k,
                                       Rng& rng) {
  std::vector<DimRange> conditions;
  const std::vector<size_t> dims =
      rng.SampleWithoutReplacement(grid.num_dims(), k);
  for (size_t d : dims) {
    conditions.push_back({static_cast<uint32_t>(d),
                          static_cast<uint32_t>(rng.UniformIndex(grid.phi()))});
  }
  return conditions;
}

TEST(SharedCubeCacheStressTest, ManyWorkersOneCacheExactTotals) {
  constexpr size_t kWorkers = 8;
  constexpr size_t kTasks = 64;
  constexpr size_t kQueriesPerTask = 200;

  const GridModel grid = MakeGrid(500, 8, 4, 11);

  // A fixed pool of condition sets shared by all workers, so the same keys
  // collide across threads constantly (the worst case for the striping).
  std::vector<std::vector<DimRange>> pool;
  Rng pool_rng(5);
  for (int i = 0; i < 40; ++i) {
    pool.push_back(RandomConditions(grid, 1 + pool_rng.UniformIndex(4),
                                    pool_rng));
  }
  CubeCounter reference(grid);
  std::vector<size_t> expected(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    expected[i] = reference.Count(pool[i]);
  }

  SharedCubeCache::Options cache_options;
  cache_options.capacity = 1u << 10;
  cache_options.num_shards = 4;  // fewer stripes = more lock contention
  SharedCubeCache cache(cache_options);

  CubeCounter::Options counter_options;
  counter_options.shared_cache = &cache;
  std::vector<std::unique_ptr<CubeCounter>> counters;
  for (size_t w = 0; w < kWorkers; ++w) {
    counters.push_back(std::make_unique<CubeCounter>(grid, counter_options));
  }

  std::atomic<uint64_t> mismatches{0};
  ParallelFor(kTasks, kWorkers, [&](size_t task, size_t worker) {
    CubeCounter& counter = *counters[worker];
    Rng rng(1000 + task);
    for (size_t q = 0; q < kQueriesPerTask; ++q) {
      const size_t i = rng.UniformIndex(pool.size());
      if (counter.Count(pool[i]) != expected[i]) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);

  // Exact accounting. Every Count either hit the shared table or missed
  // and computed; the cache saw exactly one lookup per non-prefix-served
  // query, and the per-worker stats absorb without loss.
  CubeCounter::Stats total;
  for (const auto& counter : counters) total += counter->stats();
  EXPECT_EQ(total.queries, kTasks * kQueriesPerTask);
  EXPECT_EQ(total.queries, total.cache_hits + total.shared_hits +
                               total.prefix_counts + total.bitset_counts +
                               total.posting_counts + total.naive_counts);
  EXPECT_EQ(total.cache_hits, 0u);  // shared mode bypasses private tables

  const SharedCubeCache::Stats cache_stats = cache.stats();
  EXPECT_EQ(cache_stats.hits + cache_stats.misses, total.queries);
  EXPECT_EQ(cache_stats.hits, total.shared_hits);
  // Every miss computed (the serving-path tallies account for each one) —
  // but concurrent misses on the same key insert idempotently, so distinct
  // insertions are bounded by the key pool, not by the miss count.
  EXPECT_EQ(cache_stats.misses, total.prefix_counts + total.bitset_counts +
                                    total.posting_counts + total.naive_counts);
  EXPECT_EQ(cache_stats.evictions, 0u);  // capacity far above the pool
  EXPECT_LE(cache_stats.insertions, pool.size());
  EXPECT_GE(cache_stats.insertions, 1u);

  // AbsorbStats folds the workers into a caller's counter truthfully.
  CubeCounter absorber(grid, counter_options);
  for (const auto& counter : counters) absorber.AbsorbStats(counter->stats());
  EXPECT_EQ(absorber.stats().queries, total.queries);
  EXPECT_EQ(absorber.stats().shared_hits, total.shared_hits);
}

// Concurrent writers racing generation-clears on a tiny cache: the values
// served must still all be correct (stale entries are never served across
// a generation bump) and eviction accounting must stay consistent.
TEST(SharedCubeCacheStressTest, ThrashingTinyCacheStaysCorrect) {
  constexpr size_t kWorkers = 8;
  constexpr size_t kTasks = 32;

  const GridModel grid = MakeGrid(300, 6, 4, 23);
  std::vector<std::vector<DimRange>> pool;
  Rng pool_rng(9);
  for (int i = 0; i < 64; ++i) {
    pool.push_back(RandomConditions(grid, 1 + pool_rng.UniformIndex(3),
                                    pool_rng));
  }
  CubeCounter reference(grid);
  std::vector<size_t> expected(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    expected[i] = reference.Count(pool[i]);
  }

  SharedCubeCache::Options cache_options;
  cache_options.capacity = 16;  // far below the working set: thrash
  cache_options.prefix_capacity = 4;
  cache_options.num_shards = 2;
  SharedCubeCache cache(cache_options);
  CubeCounter::Options counter_options;
  counter_options.shared_cache = &cache;
  std::vector<std::unique_ptr<CubeCounter>> counters;
  for (size_t w = 0; w < kWorkers; ++w) {
    counters.push_back(std::make_unique<CubeCounter>(grid, counter_options));
  }

  std::atomic<uint64_t> mismatches{0};
  ParallelFor(kTasks, kWorkers, [&](size_t task, size_t worker) {
    CubeCounter& counter = *counters[worker];
    Rng rng(2000 + task);
    for (size_t q = 0; q < 100; ++q) {
      const size_t i = rng.UniformIndex(pool.size());
      if (counter.Count(pool[i]) != expected[i]) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);

  const SharedCubeCache::Stats cache_stats = cache.stats();
  EXPECT_GT(cache_stats.evictions, 0u);  // the clears really happened
  EXPECT_LE(cache_stats.evictions, cache_stats.insertions);
}

}  // namespace
}  // namespace hido
