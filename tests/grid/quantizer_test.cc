#include "grid/quantizer.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

Dataset SingleColumn(const std::vector<double>& values) {
  Dataset ds(1);
  for (double v : values) ds.AppendRow({v});
  return ds;
}

TEST(QuantizerTest, EquiDepthBalancedOnContinuousData) {
  const Dataset ds = GenerateUniform(1000, 3, 17);
  Quantizer::Options opts;
  opts.num_ranges = 10;
  const Quantizer q = Quantizer::Fit(ds, opts);
  EXPECT_EQ(q.num_ranges(), 10u);
  EXPECT_EQ(q.num_cols(), 3u);

  for (size_t c = 0; c < 3; ++c) {
    std::vector<size_t> counts(10, 0);
    for (size_t r = 0; r < ds.num_rows(); ++r) {
      counts[q.CellOf(c, ds.Get(r, c))] += 1;
    }
    for (size_t cell = 0; cell < 10; ++cell) {
      // Equi-depth: each range holds ~N/phi = 100 points.
      EXPECT_NEAR(static_cast<double>(counts[cell]), 100.0, 3.0)
          << "col " << c << " cell " << cell;
    }
  }
}

TEST(QuantizerTest, EquiWidthBoundaries) {
  const Dataset ds = SingleColumn({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0,
                                   8.0, 10.0});
  Quantizer::Options opts;
  opts.num_ranges = 5;
  opts.mode = BinningMode::kEquiWidth;
  const Quantizer q = Quantizer::Fit(ds, opts);
  // Width = 2: cells [0,2), [2,4), [4,6), [6,8), [8,10].
  EXPECT_EQ(q.CellOf(0, 0.0), 0u);
  EXPECT_EQ(q.CellOf(0, 1.9), 0u);
  EXPECT_EQ(q.CellOf(0, 2.0), 1u);
  EXPECT_EQ(q.CellOf(0, 9.9), 4u);
  EXPECT_EQ(q.CellOf(0, 10.0), 4u);
}

TEST(QuantizerTest, OutOfRangeValuesClampToEndCells) {
  const Dataset ds = SingleColumn({1.0, 2.0, 3.0, 4.0});
  Quantizer::Options opts;
  opts.num_ranges = 2;
  const Quantizer q = Quantizer::Fit(ds, opts);
  EXPECT_EQ(q.CellOf(0, -100.0), 0u);
  EXPECT_EQ(q.CellOf(0, 100.0), 1u);
}

TEST(QuantizerTest, CellOfIsMonotoneInValue) {
  const Dataset ds = GenerateUniform(500, 1, 23);
  Quantizer::Options opts;
  opts.num_ranges = 7;
  const Quantizer q = Quantizer::Fit(ds, opts);
  uint32_t prev = 0;
  for (double v = -0.5; v <= 1.5; v += 0.001) {
    const uint32_t cell = q.CellOf(0, v);
    EXPECT_GE(cell, prev);
    EXPECT_LT(cell, 7u);
    prev = cell;
  }
}

TEST(QuantizerTest, ConstantColumnCollapsesToOneCell) {
  const Dataset ds = SingleColumn({5.0, 5.0, 5.0, 5.0});
  Quantizer::Options opts;
  opts.num_ranges = 4;
  const Quantizer q = Quantizer::Fit(ds, opts);
  for (double v : {4.0, 5.0, 6.0}) {
    EXPECT_LT(q.CellOf(0, v), 4u);  // well-defined, no crash
  }
  // All data lands in one cell.
  EXPECT_EQ(q.CellOf(0, 5.0), q.CellOf(0, 5.0));
}

TEST(QuantizerTest, MissingValuesIgnoredDuringFit) {
  Dataset ds(1);
  ds.AppendRow({1.0});
  ds.AppendRow({std::numeric_limits<double>::quiet_NaN()});
  ds.AppendRow({2.0});
  ds.AppendRow({3.0});
  ds.AppendRow({4.0});
  Quantizer::Options opts;
  opts.num_ranges = 2;
  const Quantizer q = Quantizer::Fit(ds, opts);
  EXPECT_EQ(q.CellOf(0, 1.0), 0u);
  EXPECT_EQ(q.CellOf(0, 4.0), 1u);
}

TEST(QuantizerTest, CellBoundsCoverColumnRange) {
  const Dataset ds = GenerateUniform(300, 1, 31);
  Quantizer::Options opts;
  opts.num_ranges = 5;
  const Quantizer q = Quantizer::Fit(ds, opts);
  double prev_hi = -1.0;
  for (uint32_t cell = 0; cell < 5; ++cell) {
    const auto [lo, hi] = q.CellBounds(0, cell);
    EXPECT_LE(lo, hi);
    if (cell > 0) {
      EXPECT_EQ(lo, prev_hi);  // contiguous
    }
    prev_hi = hi;
  }
}

TEST(QuantizerTest, CutsAreNonDecreasing) {
  const Dataset ds = GenerateUniform(100, 2, 37);
  Quantizer::Options opts;
  opts.num_ranges = 10;
  const Quantizer q = Quantizer::Fit(ds, opts);
  for (size_t c = 0; c < 2; ++c) {
    const std::vector<double>& cuts = q.Cuts(c);
    ASSERT_EQ(cuts.size(), 9u);
    for (size_t i = 1; i < cuts.size(); ++i) {
      EXPECT_LE(cuts[i - 1], cuts[i]);
    }
  }
}

TEST(QuantizerTest, FromCutsReconstructsCellAssignment) {
  // A quantizer rebuilt from its own fitted state (the model-loading path)
  // must agree with the original on every value.
  const Dataset ds = GenerateUniform(300, 3, 53);
  Quantizer::Options opts;
  opts.num_ranges = 7;
  const Quantizer fitted = Quantizer::Fit(ds, opts);

  std::vector<std::vector<double>> cuts;
  std::vector<double> mins;
  std::vector<double> maxs;
  for (size_t c = 0; c < 3; ++c) {
    cuts.push_back(fitted.Cuts(c));
    mins.push_back(fitted.CellBounds(c, 0).first);
    maxs.push_back(fitted.CellBounds(c, 6).second);
  }
  const Quantizer rebuilt =
      Quantizer::FromCuts(opts, cuts, mins, maxs);
  for (size_t c = 0; c < 3; ++c) {
    for (double v = -0.2; v <= 1.2; v += 0.013) {
      EXPECT_EQ(rebuilt.CellOf(c, v), fitted.CellOf(c, v))
          << "col " << c << " v " << v;
    }
    EXPECT_EQ(rebuilt.CellBounds(c, 3), fitted.CellBounds(c, 3));
  }
}

TEST(QuantizerDeathTest, FromCutsValidatesShape) {
  Quantizer::Options opts;
  opts.num_ranges = 4;
  // Wrong cut count per column.
  EXPECT_DEATH(
      Quantizer::FromCuts(opts, {{0.5}}, {0.0}, {1.0}), "cuts per column");
  // Unsorted cuts.
  EXPECT_DEATH(Quantizer::FromCuts(opts, {{0.7, 0.5, 0.9}}, {0.0}, {1.0}),
               "non-decreasing");
  // Mismatched bounds vectors.
  EXPECT_DEATH(
      Quantizer::FromCuts(opts, {{0.2, 0.5, 0.7}}, {0.0, 0.0}, {1.0}),
      "");
}

TEST(QuantizerDeathTest, PhiOneAborts) {
  const Dataset ds = SingleColumn({1.0});
  Quantizer::Options opts;
  opts.num_ranges = 1;
  EXPECT_DEATH(Quantizer::Fit(ds, opts), "phi");
}

TEST(QuantizerDeathTest, AllMissingColumnAborts) {
  Dataset ds(1);
  ds.AppendRow({std::numeric_limits<double>::quiet_NaN()});
  Quantizer::Options opts;
  opts.num_ranges = 2;
  EXPECT_DEATH(Quantizer::Fit(ds, opts), "present");
}

// Property sweep: equi-depth balance holds across phi values.
class EquiDepthBalance : public ::testing::TestWithParam<size_t> {};

TEST_P(EquiDepthBalance, RangesHoldRoughlyEqualCounts) {
  const size_t phi = GetParam();
  const size_t n = 997;  // deliberately not divisible by phi
  const Dataset ds = GenerateUniform(n, 1, 41 + phi);
  Quantizer::Options opts;
  opts.num_ranges = phi;
  const Quantizer q = Quantizer::Fit(ds, opts);
  std::vector<size_t> counts(phi, 0);
  for (size_t r = 0; r < n; ++r) {
    counts[q.CellOf(0, ds.Get(r, 0))] += 1;
  }
  const double expected = static_cast<double>(n) / static_cast<double>(phi);
  for (size_t cell = 0; cell < phi; ++cell) {
    EXPECT_NEAR(static_cast<double>(counts[cell]), expected,
                expected * 0.05 + 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(PhiSweep, EquiDepthBalance,
                         ::testing::Values(2, 3, 5, 10, 20));

}  // namespace
}  // namespace hido
