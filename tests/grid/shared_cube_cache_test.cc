#include "grid/shared_cube_cache.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators/synthetic.h"
#include "grid/cube_counter.h"

namespace hido {
namespace {

GridModel MakeGrid(size_t n, size_t d, size_t phi, uint64_t seed) {
  GridModel::Options opts;
  opts.phi = phi;
  return GridModel::Build(GenerateUniform(n, d, seed), opts);
}

// A prefix entry kept in bitmap form (threshold 0: never sparsify).
PostingContainer BitmapPrefix(DynamicBitset bits) {
  const size_t cardinality = bits.Count();
  return PostingContainer::FromBitmap(std::move(bits), cardinality,
                                      /*array_threshold=*/0);
}

std::vector<DimRange> RandomConditions(const GridModel& grid, size_t k,
                                       Rng& rng) {
  std::vector<DimRange> conditions;
  const std::vector<size_t> dims =
      rng.SampleWithoutReplacement(grid.num_dims(), k);
  for (size_t d : dims) {
    conditions.push_back({static_cast<uint32_t>(d),
                          static_cast<uint32_t>(rng.UniformIndex(grid.phi()))});
  }
  return conditions;
}

TEST(PackCubeKeyTest, SortsAndPacks) {
  const CubeKey key = PackCubeKey({{3, 2}, {0, 1}, {2, 0}});
  ASSERT_EQ(key.size(), 3u);
  EXPECT_EQ(key[0], (uint64_t{0} << 32) | 1);
  EXPECT_EQ(key[1], (uint64_t{2} << 32) | 0);
  EXPECT_EQ(key[2], (uint64_t{3} << 32) | 2);
  // Order-insensitive: any permutation packs to the same key.
  EXPECT_EQ(key, PackCubeKey({{0, 1}, {2, 0}, {3, 2}}));
  EXPECT_EQ(key, PackCubeKey({{2, 0}, {3, 2}, {0, 1}}));
}

TEST(SharedCubeCacheTest, LookupInsertRoundTrip) {
  SharedCubeCache cache;
  const CubeKey key = PackCubeKey({{0, 1}, {1, 2}});
  size_t count = 0;
  EXPECT_FALSE(cache.LookupCount(key, &count));
  cache.InsertCount(key, 41);
  ASSERT_TRUE(cache.LookupCount(key, &count));
  EXPECT_EQ(count, 41u);

  const SharedCubeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SharedCubeCacheTest, ZeroCapacityDisablesTables) {
  SharedCubeCache::Options options;
  options.capacity = 0;
  options.prefix_capacity = 0;
  SharedCubeCache cache(options);
  EXPECT_FALSE(cache.prefix_enabled());

  const CubeKey key = PackCubeKey({{0, 0}});
  cache.InsertCount(key, 7);
  size_t count = 0;
  EXPECT_FALSE(cache.LookupCount(key, &count));
  cache.InsertPrefix(key, BitmapPrefix(DynamicBitset(8)));
  EXPECT_EQ(cache.LookupPrefix(key), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().prefix_insertions, 0u);
}

TEST(SharedCubeCacheTest, GenerationClearEvictsAndAccounts) {
  SharedCubeCache::Options options;
  options.capacity = 4;
  options.num_shards = 1;  // all keys share one shard: overflow is exact
  SharedCubeCache cache(options);

  for (uint32_t cell = 0; cell < 4; ++cell) {
    cache.InsertCount(PackCubeKey({{0, cell}}), cell);
  }
  // The 4th insert filled the shard and triggered a generation-clear:
  // every previously live entry is now logically absent.
  SharedCubeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.evictions, 4u);
  size_t count = 0;
  EXPECT_FALSE(cache.LookupCount(PackCubeKey({{0, 0}}), &count));

  // Stale slots are revived in place and count as insertions again.
  cache.InsertCount(PackCubeKey({{0, 0}}), 99);
  ASSERT_TRUE(cache.LookupCount(PackCubeKey({{0, 0}}), &count));
  EXPECT_EQ(count, 99u);
  EXPECT_EQ(cache.stats().insertions, 5u);
}

TEST(SharedCubeCacheTest, ClearDropsEverything) {
  SharedCubeCache cache;
  const CubeKey key = PackCubeKey({{0, 1}, {1, 0}});
  cache.InsertCount(key, 3);
  cache.InsertPrefix(key, BitmapPrefix(DynamicBitset(16)));
  cache.Clear();
  size_t count = 0;
  EXPECT_FALSE(cache.LookupCount(key, &count));
  EXPECT_EQ(cache.LookupPrefix(key), nullptr);
  const SharedCubeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.prefix_evictions, 1u);
}

TEST(SharedCubeCacheTest, PrefixStoreRoundTrip) {
  SharedCubeCache cache;
  DynamicBitset bits(10);
  bits.Set(3);
  bits.Set(7);
  const CubeKey key = PackCubeKey({{0, 0}, {1, 1}});
  EXPECT_EQ(cache.LookupPrefix(key), nullptr);
  cache.InsertPrefix(key, BitmapPrefix(bits));
  const std::shared_ptr<const PostingContainer> stored =
      cache.LookupPrefix(key);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->kind(), PostingContainer::Kind::kBitmap);
  EXPECT_EQ(stored->ToIds(), std::vector<uint32_t>({3, 7}));
  const SharedCubeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.prefix_hits, 1u);
  EXPECT_EQ(stats.prefix_misses, 1u);
  EXPECT_EQ(stats.prefix_insertions, 1u);
}

// A prefix whose intersection is sparse enough lands in array form, and a
// later query is finished from it with identical counts.
TEST(SharedCubeCacheTest, PrefixEntriesMaySparsifyToArrays) {
  SharedCubeCache cache;
  DynamicBitset bits(512);
  bits.Set(5);
  bits.Set(300);
  const CubeKey key = PackCubeKey({{0, 0}, {1, 1}});
  cache.InsertPrefix(
      key, PostingContainer::FromBitmap(bits, 2, /*array_threshold=*/16));
  const std::shared_ptr<const PostingContainer> stored =
      cache.LookupPrefix(key);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->kind(), PostingContainer::Kind::kArray);
  EXPECT_EQ(stored->ToIds(), std::vector<uint32_t>({5, 300}));
}

TEST(SharedCubeCacheTest, PrefixTableReallyClearsWhenFull) {
  SharedCubeCache::Options options;
  options.prefix_capacity = 2;
  options.num_shards = 1;
  SharedCubeCache cache(options);
  for (uint32_t cell = 0; cell < 3; ++cell) {
    cache.InsertPrefix(PackCubeKey({{0, cell}}), BitmapPrefix(DynamicBitset(8)));
  }
  // Third insert found the table full and cleared the two residents first.
  const SharedCubeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.prefix_insertions, 3u);
  EXPECT_EQ(stats.prefix_evictions, 2u);
  EXPECT_EQ(cache.LookupPrefix(PackCubeKey({{0, 0}})), nullptr);
  EXPECT_NE(cache.LookupPrefix(PackCubeKey({{0, 2}})), nullptr);
}

// The determinism contract, as a property test: for randomized grids and
// condition lists, Count is identical whether memoization is private,
// shared (with prefix memoization), shared with a tiny thrashing capacity,
// or off — and each counter's serving-path stats sum back to its queries.
TEST(SharedCubeCachePropertyTest, CountsAgreeAcrossCacheModes) {
  Rng rng(271);
  for (int round = 0; round < 8; ++round) {
    const size_t n = 100 + rng.UniformIndex(400);
    const size_t d = 4 + rng.UniformIndex(5);
    const size_t phi = 3 + rng.UniformIndex(4);
    const GridModel grid = MakeGrid(n, d, phi, 1000 + round);

    CubeCounter::Options off;
    off.cache_capacity = 0;
    CubeCounter private_counter(grid);
    CubeCounter off_counter(grid, off);

    SharedCubeCache shared_cache;
    CubeCounter::Options shared_opts;
    shared_opts.shared_cache = &shared_cache;
    CubeCounter shared_counter(grid, shared_opts);

    SharedCubeCache::Options tiny;
    tiny.capacity = 8;
    tiny.prefix_capacity = 2;
    tiny.num_shards = 1;
    SharedCubeCache tiny_cache(tiny);
    CubeCounter::Options tiny_opts;
    tiny_opts.shared_cache = &tiny_cache;
    CubeCounter tiny_counter(grid, tiny_opts);

    // Draw from a small pool of condition sets so revisits exercise the
    // hit paths, not just cold misses.
    std::vector<std::vector<DimRange>> pool;
    for (int i = 0; i < 12; ++i) {
      pool.push_back(RandomConditions(grid, 1 + rng.UniformIndex(4), rng));
    }
    for (int trial = 0; trial < 120; ++trial) {
      const std::vector<DimRange>& conditions =
          pool[rng.UniformIndex(pool.size())];
      const size_t expected = private_counter.Count(conditions);
      EXPECT_EQ(shared_counter.Count(conditions), expected);
      EXPECT_EQ(tiny_counter.Count(conditions), expected);
      EXPECT_EQ(off_counter.Count(conditions), expected);
    }

    for (const CubeCounter* counter :
         {&private_counter, &shared_counter, &tiny_counter, &off_counter}) {
      const CubeCounter::Stats& s = counter->stats();
      EXPECT_EQ(s.queries, s.cache_hits + s.shared_hits + s.prefix_counts +
                               s.bitset_counts + s.posting_counts +
                               s.naive_counts);
    }
    // The shared counter really served queries from the shared table.
    EXPECT_GT(shared_counter.stats().shared_hits, 0u);
    EXPECT_EQ(off_counter.stats().cache_hits, 0u);
    EXPECT_EQ(off_counter.stats().shared_hits, 0u);
  }
}

// Prefix memoization kicks in for k >= 3 once a (k-1)-prefix recurs with a
// different final condition, and the finished count matches the full
// computation.
TEST(SharedCubeCacheTest, PrefixMemoizationServesRecurringPrefixes) {
  const GridModel grid = MakeGrid(600, 6, 4, 77);
  SharedCubeCache cache;
  CubeCounter::Options opts;
  opts.shared_cache = &cache;
  opts.strategy = CountingStrategy::kBitset;
  CubeCounter counter(grid, opts);
  CubeCounter reference(grid);

  // Same 2-dim prefix, varying third condition: the first query stores the
  // prefix bitset, every later one finishes from it.
  for (uint32_t cell = 0; cell < grid.phi(); ++cell) {
    const std::vector<DimRange> conditions = {{0, 1}, {1, 2}, {2, cell}};
    EXPECT_EQ(counter.Count(conditions), reference.Count(conditions));
  }
  EXPECT_EQ(counter.stats().prefix_counts, grid.phi() - 1);
  EXPECT_EQ(cache.stats().prefix_insertions, 1u);
  EXPECT_EQ(cache.stats().prefix_hits, grid.phi() - 1);
}

}  // namespace
}  // namespace hido
