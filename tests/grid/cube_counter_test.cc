#include "grid/cube_counter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

GridModel MakeGrid(size_t n, size_t d, size_t phi, uint64_t seed) {
  GridModel::Options opts;
  opts.phi = phi;
  return GridModel::Build(GenerateUniform(n, d, seed), opts);
}

std::vector<DimRange> RandomConditions(const GridModel& grid, size_t k,
                                       Rng& rng) {
  std::vector<DimRange> conditions;
  const std::vector<size_t> dims =
      rng.SampleWithoutReplacement(grid.num_dims(), k);
  for (size_t d : dims) {
    conditions.push_back({static_cast<uint32_t>(d),
                          static_cast<uint32_t>(rng.UniformIndex(grid.phi()))});
  }
  return conditions;
}

TEST(CubeCounterTest, SingleConditionMatchesPostingList) {
  const GridModel grid = MakeGrid(500, 3, 5, 1);
  CubeCounter counter(grid);
  for (uint32_t cell = 0; cell < 5; ++cell) {
    EXPECT_EQ(counter.Count({{0, cell}}), grid.RangeCardinality(0, cell));
  }
}

TEST(CubeCounterTest, AllStrategiesAgree) {
  const GridModel grid = MakeGrid(700, 6, 4, 2);
  CubeCounter counter(grid);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t k = 1 + rng.UniformIndex(4);
    const std::vector<DimRange> conditions = RandomConditions(grid, k, rng);
    const size_t bitset =
        counter.CountUncached(conditions, CountingStrategy::kBitset);
    const size_t postings =
        counter.CountUncached(conditions, CountingStrategy::kPostingList);
    const size_t naive =
        counter.CountUncached(conditions, CountingStrategy::kNaive);
    EXPECT_EQ(bitset, postings);
    EXPECT_EQ(bitset, naive);
  }
}

TEST(CubeCounterTest, ConditionOrderDoesNotMatter) {
  const GridModel grid = MakeGrid(400, 4, 3, 5);
  CubeCounter counter(grid);
  const std::vector<DimRange> a = {{0, 1}, {2, 0}, {3, 2}};
  const std::vector<DimRange> b = {{3, 2}, {0, 1}, {2, 0}};
  EXPECT_EQ(counter.Count(a), counter.Count(b));
}

TEST(CubeCounterTest, CacheHitsOnRepeatedQueries) {
  const GridModel grid = MakeGrid(300, 4, 3, 7);
  CubeCounter counter(grid);
  const std::vector<DimRange> conditions = {{0, 0}, {1, 1}};
  const size_t first = counter.Count(conditions);
  const size_t again = counter.Count(conditions);
  EXPECT_EQ(first, again);
  EXPECT_EQ(counter.stats().queries, 2u);
  EXPECT_EQ(counter.stats().cache_hits, 1u);
  // Permuted conditions hit the same cache entry.
  counter.Count({{1, 1}, {0, 0}});
  EXPECT_EQ(counter.stats().cache_hits, 2u);
}

TEST(CubeCounterTest, CacheDisabled) {
  const GridModel grid = MakeGrid(300, 4, 3, 7);
  CubeCounter::Options opts;
  opts.cache_capacity = 0;
  CubeCounter counter(grid, opts);
  counter.Count({{0, 0}});
  counter.Count({{0, 0}});
  EXPECT_EQ(counter.stats().cache_hits, 0u);
}

TEST(CubeCounterTest, ClearCacheForgets) {
  const GridModel grid = MakeGrid(300, 4, 3, 7);
  CubeCounter counter(grid);
  counter.Count({{0, 0}});
  counter.ClearCache();
  counter.Count({{0, 0}});
  EXPECT_EQ(counter.stats().cache_hits, 0u);
  // The drop is accounted, not silent: one clear event, one entry lost.
  EXPECT_EQ(counter.stats().cache_clears, 1u);
  EXPECT_EQ(counter.stats().cache_evictions, 1u);
}

TEST(CubeCounterTest, WholesaleClearOnFullIsAccounted) {
  const GridModel grid = MakeGrid(300, 4, 3, 7);
  CubeCounter::Options opts;
  opts.cache_capacity = 2;
  CubeCounter counter(grid, opts);
  // Three distinct queries: the third finds the table full, clears the two
  // residents (counted), and caches itself.
  counter.Count({{0, 0}});
  counter.Count({{0, 1}});
  counter.Count({{0, 2}});
  EXPECT_EQ(counter.stats().cache_clears, 1u);
  EXPECT_EQ(counter.stats().cache_evictions, 2u);
  // The newest entry survived the clear; the evicted ones recompute.
  counter.Count({{0, 2}});
  EXPECT_EQ(counter.stats().cache_hits, 1u);
  counter.Count({{0, 0}});
  EXPECT_EQ(counter.stats().cache_hits, 1u);
  // Every query is still served by exactly one path.
  const CubeCounter::Stats& s = counter.stats();
  EXPECT_EQ(s.queries, s.cache_hits + s.shared_hits + s.prefix_counts +
                           s.bitset_counts + s.posting_counts +
                           s.naive_counts);
}

TEST(CubeCounterTest, SharedModeBypassesPrivateCache) {
  const GridModel grid = MakeGrid(300, 4, 3, 7);
  SharedCubeCache cache;
  CubeCounter::Options opts;
  opts.shared_cache = &cache;
  CubeCounter counter(grid, opts);
  const std::vector<DimRange> conditions = {{0, 0}, {1, 1}};
  const size_t first = counter.Count(conditions);
  EXPECT_EQ(counter.Count(conditions), first);
  EXPECT_EQ(counter.stats().cache_hits, 0u);
  EXPECT_EQ(counter.stats().shared_hits, 1u);
  // A second counter on the same cache reuses the first one's work.
  CubeCounter other(grid, opts);
  EXPECT_EQ(other.Count(conditions), first);
  EXPECT_EQ(other.stats().shared_hits, 1u);
}

TEST(CubeCounterTest, CoveredPointsMatchCount) {
  const GridModel grid = MakeGrid(600, 5, 4, 9);
  CubeCounter counter(grid);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<DimRange> conditions = RandomConditions(grid, 2, rng);
    const std::vector<uint32_t> covered = counter.CoveredPoints(conditions);
    EXPECT_EQ(covered.size(), counter.Count(conditions));
    for (uint32_t row : covered) {
      EXPECT_TRUE(grid.Covers(row, conditions));
    }
  }
}

TEST(CubeCounterTest, FullConjunctionOfOnePointCell) {
  // A cube conditioned on every dimension of a single point contains
  // at least that point.
  const GridModel grid = MakeGrid(100, 3, 4, 13);
  CubeCounter counter(grid);
  std::vector<DimRange> conditions;
  for (size_t d = 0; d < 3; ++d) {
    conditions.push_back({static_cast<uint32_t>(d), grid.Cell(42, d)});
  }
  EXPECT_GE(counter.Count(conditions), 1u);
  const std::vector<uint32_t> covered = counter.CoveredPoints(conditions);
  EXPECT_NE(std::find(covered.begin(), covered.end(), 42u), covered.end());
}

// Counts are identical at any container threshold: forcing every range to
// a bitmap, every range to a sorted array, or the auto mix changes only
// the representation each query intersects, never the result. Each
// counter's serving-path stats still reconcile with its query total.
TEST(CubeCounterTest, CountsAgreeAcrossContainerThresholds) {
  const Dataset data = GenerateUniform(500, 5, 21);
  GridModel::Options all_bitmaps;
  all_bitmaps.phi = 4;
  all_bitmaps.array_threshold = 0;
  GridModel::Options all_arrays;
  all_arrays.phi = 4;
  all_arrays.array_threshold = 501;  // every range is sparser than this
  GridModel::Options mixed;
  mixed.phi = 4;  // auto threshold: rows/32
  const GridModel bitmap_grid = GridModel::Build(data, all_bitmaps);
  const GridModel array_grid = GridModel::Build(data, all_arrays);
  const GridModel mixed_grid = GridModel::Build(data, mixed);

  CubeCounter bitmap_counter(bitmap_grid);
  CubeCounter array_counter(array_grid);
  CubeCounter mixed_counter(mixed_grid);
  Rng rng(23);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t k = 1 + rng.UniformIndex(4);
    const std::vector<DimRange> conditions =
        RandomConditions(bitmap_grid, k, rng);
    const size_t expected = bitmap_counter.Count(conditions);
    EXPECT_EQ(array_counter.Count(conditions), expected);
    EXPECT_EQ(mixed_counter.Count(conditions), expected);
  }
  for (const CubeCounter* counter :
       {&bitmap_counter, &array_counter, &mixed_counter}) {
    const CubeCounter::Stats& s = counter->stats();
    EXPECT_EQ(s.queries, s.cache_hits + s.shared_hits + s.prefix_counts +
                             s.bitset_counts + s.posting_counts +
                             s.naive_counts);
  }
}

// The strategy fold: when every container in the cube is an array, auto
// mode routes the query to the posting-list path (probing a handful of
// sorted ids beats streaming bitmap words).
TEST(CubeCounterTest, ChooseRoutesAllArrayCubesToPostings) {
  const Dataset data = GenerateUniform(400, 4, 25);
  GridModel::Options opts;
  opts.phi = 3;
  opts.array_threshold = 401;  // force every range to array form
  const GridModel grid = GridModel::Build(data, opts);
  CubeCounter::Options copts;
  copts.cache_capacity = 0;
  CubeCounter counter(grid, copts);
  Rng rng(27);
  for (int trial = 0; trial < 20; ++trial) {
    counter.Count(RandomConditions(grid, 2 + rng.UniformIndex(3), rng));
  }
  const CubeCounter::Stats& s = counter.stats();
  EXPECT_EQ(s.posting_counts, s.queries);
  EXPECT_EQ(s.bitset_counts, 0u);
}

// A forced bitset strategy stays correct even when the grid holds array
// containers (the bitset path materializes them on the fly).
TEST(CubeCounterTest, ForcedBitsetCorrectOnArrayContainers) {
  const Dataset data = GenerateUniform(400, 4, 29);
  GridModel::Options opts;
  opts.phi = 3;
  opts.array_threshold = 401;
  const GridModel forced = GridModel::Build(data, opts);
  opts.array_threshold = 0;
  const GridModel reference = GridModel::Build(data, opts);
  CubeCounter forced_counter(forced);
  CubeCounter reference_counter(reference);
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<DimRange> conditions =
        RandomConditions(forced, 1 + rng.UniformIndex(4), rng);
    EXPECT_EQ(
        forced_counter.CountUncached(conditions, CountingStrategy::kBitset),
        reference_counter.CountUncached(conditions, CountingStrategy::kBitset));
    EXPECT_EQ(
        forced_counter.CountUncached(conditions, CountingStrategy::kPostingList),
        reference_counter.CountUncached(conditions, CountingStrategy::kNaive));
  }
}

TEST(CubeCounterDeathTest, EmptyConditionsAbort) {
  const GridModel grid = MakeGrid(10, 2, 2, 15);
  CubeCounter counter(grid);
  EXPECT_DEATH(counter.Count({}), "empty");
}

// Property: counting distributes over the grid — per-dimension totals of
// 2-cubes over all cells of the second dim equal the 1-cube count.
TEST(CubeCounterTest, MarginalizationProperty) {
  const GridModel grid = MakeGrid(800, 4, 5, 17);
  CubeCounter counter(grid);
  for (uint32_t c0 = 0; c0 < 5; ++c0) {
    size_t total = 0;
    for (uint32_t c1 = 0; c1 < 5; ++c1) {
      total += counter.Count({{0, c0}, {1, c1}});
    }
    EXPECT_EQ(total, counter.Count({{0, c0}}));
  }
}

}  // namespace
}  // namespace hido
