// End-to-end configuration sweep for the detector facade: every
// combination of algorithm, binning mode, expectation model, and crossover
// must run to completion and uphold the report's invariants.

#include <tuple>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

// (algorithm, binning, expectation, crossover)
using Combo = std::tuple<SearchAlgorithm, BinningMode, ExpectationModel,
                         CrossoverKind>;

class DetectorCombos : public ::testing::TestWithParam<Combo> {};

TEST_P(DetectorCombos, RunsAndUpholdsInvariants) {
  SubspaceOutlierConfig gen;
  gen.num_points = 300;
  gen.num_dims = 10;
  gen.num_groups = 2;
  gen.num_outliers = 4;
  gen.seed = 5;
  const GeneratedDataset g = GenerateSubspaceOutliers(gen);

  DetectorConfig config;
  config.algorithm = std::get<0>(GetParam());
  config.binning = std::get<1>(GetParam());
  config.expectation = std::get<2>(GetParam());
  config.evolution.crossover = std::get<3>(GetParam());
  config.phi = 5;
  config.target_dim = 2;
  config.num_projections = 8;
  config.evolution.population_size = 40;
  config.evolution.max_generations = 30;
  config.evolution.restarts = 2;
  config.seed = 7;

  const DetectionResult result = OutlierDetector(config).Detect(g.data);

  // Invariants that hold for every configuration.
  EXPECT_EQ(result.phi, 5u);
  EXPECT_EQ(result.target_dim, 2u);
  EXPECT_LE(result.report.projections.size(), 8u);
  EXPECT_FALSE(result.report.projections.empty());
  for (size_t i = 0; i < result.report.projections.size(); ++i) {
    const ScoredProjection& s = result.report.projections[i];
    EXPECT_EQ(s.projection.Dimensionality(), 2u);
    EXPECT_GE(s.count, 1u);  // non-empty filter
    if (i > 0) {
      EXPECT_LE(result.report.projections[i - 1].sparsity, s.sparsity);
    }
  }
  for (const OutlierRecord& record : result.report.outliers) {
    EXPECT_LT(record.row, g.data.num_rows());
    EXPECT_FALSE(record.projection_ids.empty());
    for (size_t pid : record.projection_ids) {
      ASSERT_LT(pid, result.report.projections.size());
      EXPECT_TRUE(result.grid.Covers(
          record.row,
          result.report.projections[pid].projection.Conditions()));
    }
  }
}

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  std::string name;
  name += std::get<0>(info.param) == SearchAlgorithm::kBruteForce ? "Brute"
                                                                  : "Evo";
  name += std::get<1>(info.param) == BinningMode::kEquiDepth ? "Depth"
                                                             : "Width";
  name += std::get<2>(info.param) == ExpectationModel::kUniform
              ? "Uniform"
              : "Empirical";
  name += std::get<3>(info.param) == CrossoverKind::kOptimized ? "Opt"
                                                               : "TwoPt";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, DetectorCombos,
    ::testing::Combine(
        ::testing::Values(SearchAlgorithm::kEvolutionary,
                          SearchAlgorithm::kBruteForce),
        ::testing::Values(BinningMode::kEquiDepth, BinningMode::kEquiWidth),
        ::testing::Values(ExpectationModel::kUniform,
                          ExpectationModel::kEmpiricalMarginals),
        ::testing::Values(CrossoverKind::kOptimized,
                          CrossoverKind::kTwoPoint)),
    ComboName);

}  // namespace
}  // namespace hido
