// Round-trip property: for randomized datasets (shape, missing cells,
// labels), Write -> Read reproduces the dataset exactly (values via %.17g,
// masks, names, labels).

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"
#include "data/generators/synthetic.h"

namespace hido {
namespace {

// (rows, cols, missing_permille, with_labels, seed)
using CsvCase = std::tuple<size_t, size_t, size_t, bool, uint64_t>;

class CsvRoundTripProperty : public ::testing::TestWithParam<CsvCase> {};

TEST_P(CsvRoundTripProperty, WriteReadIsIdentity) {
  const auto [rows, cols, missing_permille, with_labels, seed] = GetParam();
  Rng rng(seed);
  Dataset original(cols);
  for (size_t c = 0; c < cols; ++c) {
    original.SetColumnName(c, "col_" + std::to_string(c));
  }
  std::vector<double> row(cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      // Adversarial values: scales, negatives, many digits.
      const double magnitude = std::pow(10.0, rng.UniformInt(-8, 8));
      row[c] = (rng.Bernoulli(0.5) ? 1 : -1) * rng.UniformDouble() *
               magnitude;
      if (rng.Bernoulli(static_cast<double>(missing_permille) / 1000.0)) {
        row[c] = std::numeric_limits<double>::quiet_NaN();
      }
    }
    original.AppendRow(row);
  }
  if (with_labels) {
    std::vector<int32_t> labels(rows);
    for (int32_t& label : labels) {
      label = static_cast<int32_t>(rng.UniformInt(-5, 20));
    }
    original.SetLabels(std::move(labels));
  }

  CsvReadOptions ropts;
  if (with_labels) ropts.label_column = static_cast<int>(cols);
  const Result<Dataset> restored =
      ReadCsvString(WriteCsvString(original), ropts);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Dataset& back = restored.value();

  ASSERT_EQ(back.num_rows(), rows);
  ASSERT_EQ(back.num_cols(), cols);
  for (size_t c = 0; c < cols; ++c) {
    EXPECT_EQ(back.ColumnName(c), original.ColumnName(c));
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      ASSERT_EQ(back.IsMissing(r, c), original.IsMissing(r, c))
          << r << "," << c;
      if (!original.IsMissing(r, c)) {
        EXPECT_EQ(back.Get(r, c), original.Get(r, c)) << r << "," << c;
      }
    }
    if (with_labels) {
      EXPECT_EQ(back.Label(r), original.Label(r));
    }
  }
}

// Robustness property: start from a valid CSV, hit it with random byte-level
// damage (truncation, NUL injection, garbage bytes, delimiter insertion,
// chunk duplication, giant fields), and the reader must either parse it —
// ragged damage can cancel out — or return a structured "csv:" parse error;
// it must never crash or hang. Successful parses must stay within the
// structural caps.
class CsvMutationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvMutationProperty, MutatedInputFailsCleanlyOrParses) {
  Rng rng(GetParam());
  // A valid starting point, regenerated per seed.
  std::string text = "alpha,beta,gamma\n";
  const size_t rows = 3 + rng.UniformIndex(20);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      if (c > 0) text.push_back(',');
      text += std::to_string(rng.UniformInt(-1000, 1000));
    }
    text.push_back('\n');
  }

  const size_t mutations = 1 + rng.UniformIndex(4);
  for (size_t m = 0; m < mutations && !text.empty(); ++m) {
    const size_t pos = rng.UniformIndex(text.size());
    switch (rng.UniformIndex(6)) {
      case 0:  // truncate
        text.resize(pos);
        break;
      case 1:  // inject a NUL byte
        text.insert(text.begin() + static_cast<ptrdiff_t>(pos), '\0');
        break;
      case 2:  // overwrite with a random byte (possibly non-ASCII)
        text[pos] = static_cast<char>(rng.UniformIndex(256));
        break;
      case 3:  // extra delimiter (ragged row)
        text.insert(text.begin() + static_cast<ptrdiff_t>(pos), ',');
        break;
      case 4: {  // duplicate a chunk
        const size_t len = std::min<size_t>(text.size() - pos,
                                            1 + rng.UniformIndex(32));
        text.insert(pos, text.substr(pos, len));
        break;
      }
      case 5:  // splice in an oversized field
        text.insert(pos, std::string(5000, 'x'));
        break;
    }
  }

  CsvReadOptions opts;
  const Result<Dataset> r = ReadCsvString(text, opts);
  if (!r.ok()) {
    EXPECT_TRUE(r.status().code() == StatusCode::kParseError ||
                r.status().code() == StatusCode::kInvalidArgument)
        << r.status().ToString();
    EXPECT_EQ(r.status().message().rfind("csv:", 0), 0u)
        << "error lacks csv context: " << r.status().ToString();
  } else {
    EXPECT_LE(r.value().num_cols(), opts.max_columns);
  }
}

INSTANTIATE_TEST_SUITE_P(MutatedCsv, CsvMutationProperty,
                         ::testing::Range<uint64_t>(1, 81));

INSTANTIATE_TEST_SUITE_P(
    RandomDatasets, CsvRoundTripProperty,
    ::testing::Values(CsvCase{1, 1, 0, false, 1},
                      CsvCase{50, 3, 0, false, 2},
                      CsvCase{30, 5, 100, false, 3},
                      CsvCase{40, 2, 300, true, 4},
                      CsvCase{100, 8, 50, true, 5},
                      CsvCase{7, 12, 0, true, 6}),
    [](const ::testing::TestParamInfo<CsvCase>& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_lab" : "_nolab") + "_s" +
             std::to_string(std::get<4>(info.param));
    });

}  // namespace
}  // namespace hido
