// Grid-layer invariants over random datasets and parameter sweeps.

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators/synthetic.h"
#include "grid/cube_counter.h"
#include "grid/sparsity.h"

namespace hido {
namespace {

// (n, d, phi, missing_permille, seed)
using GridInstance = std::tuple<size_t, size_t, size_t, size_t, uint64_t>;

class GridProperty : public ::testing::TestWithParam<GridInstance> {
 protected:
  void SetUp() override {
    const auto [n, d, phi, missing_permille, seed] = GetParam();
    n_ = n;
    d_ = d;
    phi_ = phi;
    data_ = GenerateUniform(n, d, seed);
    if (missing_permille > 0) {
      Rng rng(seed + 1);
      for (size_t r = 0; r < data_.num_rows(); ++r) {
        for (size_t c = 0; c < data_.num_cols(); ++c) {
          if (rng.Bernoulli(static_cast<double>(missing_permille) / 1000.0)) {
            data_.SetMissing(r, c);
          }
        }
      }
    }
    GridModel::Options gopts;
    gopts.phi = phi;
    grid_ = GridModel::Build(data_, gopts);
  }

  size_t n_, d_, phi_;
  Dataset data_;
  GridModel grid_;
};

TEST_P(GridProperty, RangesPartitionPresentPoints) {
  for (size_t dim = 0; dim < d_; ++dim) {
    size_t total = 0;
    for (uint32_t cell = 0; cell < phi_; ++cell) {
      const PostingContainer& members = grid_.Container(dim, cell);
      EXPECT_EQ(members.cardinality(), members.ToIds().size());
      total += members.cardinality();
    }
    EXPECT_EQ(total, data_.PresentCount(dim));
  }
}

TEST_P(GridProperty, CellAssignmentsConsistent) {
  for (size_t dim = 0; dim < d_; ++dim) {
    for (size_t row = 0; row < n_; ++row) {
      const uint32_t cell = grid_.Cell(row, dim);
      if (data_.IsMissing(row, dim)) {
        EXPECT_EQ(cell, GridModel::kMissingCell);
      } else {
        ASSERT_LT(cell, phi_);
        EXPECT_TRUE(grid_.Container(dim, cell).Contains(row));
      }
    }
  }
}

TEST_P(GridProperty, CountingStrategiesAgreeOnRandomCubes) {
  CubeCounter::Options copts;
  copts.cache_capacity = 0;
  CubeCounter counter(grid_, copts);
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t k = 1 + rng.UniformIndex(std::min<size_t>(4, d_));
    std::vector<DimRange> conditions;
    for (size_t dim : rng.SampleWithoutReplacement(d_, k)) {
      conditions.push_back(
          {static_cast<uint32_t>(dim),
           static_cast<uint32_t>(rng.UniformIndex(phi_))});
    }
    const size_t bitset =
        counter.CountUncached(conditions, CountingStrategy::kBitset);
    EXPECT_EQ(bitset,
              counter.CountUncached(conditions,
                                    CountingStrategy::kPostingList));
    EXPECT_EQ(bitset,
              counter.CountUncached(conditions, CountingStrategy::kNaive));
    EXPECT_EQ(bitset, counter.CoveredPoints(conditions).size());
  }
}

TEST_P(GridProperty, SparsityTotalsAreCoherent) {
  // Sum of counts over all cells of any 2-dim pair equals the number of
  // rows present in both dims; per Equation 1 the count-weighted mean of
  // S(D) over a partition is bounded by the all-cells-at-expectation case.
  if (d_ < 2) return;
  CubeCounter counter(grid_);
  size_t both_present = 0;
  for (size_t row = 0; row < n_; ++row) {
    both_present +=
        (!data_.IsMissing(row, 0) && !data_.IsMissing(row, 1)) ? 1 : 0;
  }
  size_t total = 0;
  for (uint32_t c0 = 0; c0 < phi_; ++c0) {
    for (uint32_t c1 = 0; c1 < phi_; ++c1) {
      total += counter.Count({{0, c0}, {1, c1}});
    }
  }
  EXPECT_EQ(total, both_present);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGrids, GridProperty,
    ::testing::Values(GridInstance{100, 3, 2, 0, 1},
                      GridInstance{500, 6, 5, 0, 2},
                      GridInstance{1000, 4, 10, 0, 3},
                      GridInstance{300, 8, 4, 50, 4},
                      GridInstance{200, 5, 7, 200, 5},
                      GridInstance{64, 2, 8, 0, 6}),
    [](const ::testing::TestParamInfo<GridInstance>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_phi" +
             std::to_string(std::get<2>(info.param)) + "_miss" +
             std::to_string(std::get<3>(info.param)) + "_s" +
             std::to_string(std::get<4>(info.param));
    });

}  // namespace
}  // namespace hido
