// Cross-algorithm consistency properties: every search implementation
// (DFS brute force — serial and parallel —, materialized candidate sets,
// and, on small spaces, the evolutionary and local searches) must agree on
// the optimum of random instances; and all-points coverage invariants hold
// end to end.

#include <tuple>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/candidate_search.h"
#include "core/evolutionary_search.h"
#include "core/local_search.h"
#include "data/generators/synthetic.h"
#include "grid/cube_counter.h"

namespace hido {
namespace {

// (n, d, k, phi, seed)
using Instance = std::tuple<size_t, size_t, size_t, size_t, uint64_t>;

class SearchConsistency : public ::testing::TestWithParam<Instance> {
 protected:
  void SetUp() override {
    const auto [n, d, k, phi, seed] = GetParam();
    k_ = k;
    GridModel::Options gopts;
    gopts.phi = phi;
    grid_ = GridModel::Build(GenerateUniform(n, d, seed), gopts);
    counter_ = std::make_unique<CubeCounter>(grid_);
    objective_ = std::make_unique<SparsityObjective>(*counter_);
  }

  size_t k_ = 0;
  GridModel grid_;
  std::unique_ptr<CubeCounter> counter_;
  std::unique_ptr<SparsityObjective> objective_;
};

TEST_P(SearchConsistency, AllExactAlgorithmsAgree) {
  BruteForceOptions bopts;
  bopts.target_dim = k_;
  bopts.num_projections = 5;
  const BruteForceResult serial = BruteForceSearch(*objective_, bopts);
  bopts.num_threads = 3;
  const BruteForceResult parallel = BruteForceSearch(*objective_, bopts);

  CandidateSearchOptions copts;
  copts.target_dim = k_;
  copts.num_projections = 5;
  const CandidateSearchResult materialized =
      CandidateSetSearch(*objective_, copts);
  ASSERT_TRUE(materialized.stats.completed);

  ASSERT_EQ(serial.best.size(), parallel.best.size());
  ASSERT_EQ(serial.best.size(), materialized.best.size());
  for (size_t i = 0; i < serial.best.size(); ++i) {
    EXPECT_NEAR(serial.best[i].sparsity, parallel.best[i].sparsity, 1e-12);
    EXPECT_NEAR(serial.best[i].sparsity, materialized.best[i].sparsity,
                1e-12);
    EXPECT_EQ(serial.best[i].count, parallel.best[i].count);
    EXPECT_EQ(serial.best[i].count, materialized.best[i].count);
  }
}

TEST_P(SearchConsistency, HeuristicsReachTheOptimumOnSmallSpaces) {
  BruteForceOptions bopts;
  bopts.target_dim = k_;
  bopts.num_projections = 1;
  const BruteForceResult brute = BruteForceSearch(*objective_, bopts);
  ASSERT_FALSE(brute.best.empty());
  const double optimum = brute.best.front().sparsity;

  EvolutionaryOptions eopts;
  eopts.target_dim = k_;
  eopts.num_projections = 1;
  eopts.population_size = 40;
  eopts.max_generations = 60;
  eopts.restarts = 3;
  eopts.seed = 9;
  const EvolutionResult evo = EvolutionarySearch(*objective_, eopts);
  ASSERT_FALSE(evo.best.empty());
  EXPECT_NEAR(evo.best.front().sparsity, optimum, 1e-9);

  LocalSearchOptions lopts;
  lopts.method = LocalSearchMethod::kHillClimbing;
  lopts.target_dim = k_;
  lopts.num_projections = 1;
  lopts.max_evaluations = 8000;
  lopts.seed = 9;
  const LocalSearchResult hill = LocalSearch(*objective_, lopts);
  ASSERT_FALSE(hill.best.empty());
  EXPECT_NEAR(hill.best.front().sparsity, optimum, 1e-9);
}

TEST_P(SearchConsistency, ReportedCountsAreTruthful) {
  BruteForceOptions bopts;
  bopts.target_dim = k_;
  bopts.num_projections = 8;
  const BruteForceResult result = BruteForceSearch(*objective_, bopts);
  for (const ScoredProjection& s : result.best) {
    // Recount through an independent path.
    size_t count = 0;
    for (size_t row = 0; row < grid_.num_points(); ++row) {
      count += grid_.Covers(row, s.projection.Conditions()) ? 1 : 0;
    }
    EXPECT_EQ(count, s.count);
    EXPECT_NEAR(s.sparsity, objective_->model().Coefficient(count, k_),
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, SearchConsistency,
    ::testing::Values(Instance{150, 5, 2, 3, 1}, Instance{300, 6, 2, 4, 2},
                      Instance{200, 7, 3, 3, 3}, Instance{400, 5, 3, 4, 4},
                      Instance{250, 8, 2, 5, 5}, Instance{100, 6, 4, 2, 6}),
    [](const ::testing::TestParamInfo<Instance>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param)) + "_phi" +
             std::to_string(std::get<3>(info.param)) + "_s" +
             std::to_string(std::get<4>(info.param));
    });

}  // namespace
}  // namespace hido
