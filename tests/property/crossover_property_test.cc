// Property sweep for the optimized crossover across (d, k, phi): the
// operator's contracts must hold for every shape, not just the defaults.

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "core/genetic/crossover.h"
#include "data/generators/synthetic.h"
#include "grid/cube_counter.h"

namespace hido {
namespace {

// (d, k, phi)
using Shape = std::tuple<size_t, size_t, size_t>;

class OptimizedCrossoverProperty : public ::testing::TestWithParam<Shape> {
 protected:
  void SetUp() override {
    const auto [d, k, phi] = GetParam();
    d_ = d;
    k_ = k;
    phi_ = phi;
    GridModel::Options gopts;
    gopts.phi = phi;
    grid_ = GridModel::Build(GenerateUniform(300, d, 11), gopts);
    counter_ = std::make_unique<CubeCounter>(grid_);
    objective_ = std::make_unique<SparsityObjective>(*counter_);
  }

  size_t d_, k_, phi_;
  GridModel grid_;
  std::unique_ptr<CubeCounter> counter_;
  std::unique_ptr<SparsityObjective> objective_;
};

TEST_P(OptimizedCrossoverProperty, ContractsHoldOnRandomParents) {
  Rng rng(1000 + d_ * 13 + k_ * 7 + phi_);
  for (int trial = 0; trial < 25; ++trial) {
    const Projection a = Projection::Random(d_, k_, phi_, rng);
    const Projection b = Projection::Random(d_, k_, phi_, rng);
    const auto [s, sp] = OptimizedCrossover(a, b, k_, *objective_);

    // 1. Dimensionality preservation.
    ASSERT_EQ(s.Dimensionality(), k_);
    ASSERT_EQ(sp.Dimensionality(), k_);

    for (size_t pos = 0; pos < d_; ++pos) {
      const bool a_spec = a.IsSpecified(pos);
      const bool b_spec = b.IsSpecified(pos);
      // 2. Children use only parent material.
      for (const Projection* child : {&s, &sp}) {
        if (!child->IsSpecified(pos)) continue;
        const uint32_t cell = child->CellAt(pos);
        EXPECT_TRUE((a_spec && a.CellAt(pos) == cell) ||
                    (b_spec && b.CellAt(pos) == cell));
      }
      // 3. Complementary derivation (Figure 5's definition).
      if (!a_spec && !b_spec) {
        EXPECT_FALSE(s.IsSpecified(pos) || sp.IsSpecified(pos));
      } else if (a_spec != b_spec) {
        EXPECT_NE(s.IsSpecified(pos), sp.IsSpecified(pos));
      } else if (a.CellAt(pos) != b.CellAt(pos)) {
        const std::set<uint32_t> got = {s.CellAt(pos), sp.CellAt(pos)};
        const std::set<uint32_t> want = {a.CellAt(pos), b.CellAt(pos)};
        EXPECT_EQ(got, want);
      } else {
        EXPECT_EQ(s.CellAt(pos), a.CellAt(pos));
        EXPECT_EQ(sp.CellAt(pos), a.CellAt(pos));
      }
    }
  }
}

TEST_P(OptimizedCrossoverProperty, DeterministicGivenParents) {
  Rng rng(2000 + d_);
  const Projection a = Projection::Random(d_, k_, phi_, rng);
  const Projection b = Projection::Random(d_, k_, phi_, rng);
  const auto [s1, sp1] = OptimizedCrossover(a, b, k_, *objective_);
  const auto [s2, sp2] = OptimizedCrossover(a, b, k_, *objective_);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(sp1, sp2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OptimizedCrossoverProperty,
    ::testing::Values(Shape{4, 2, 3}, Shape{8, 2, 5}, Shape{8, 4, 4},
                      Shape{8, 8, 3}, Shape{16, 3, 10}, Shape{24, 6, 4},
                      Shape{40, 2, 8}, Shape{40, 5, 5}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_phi" +
             std::to_string(std::get<2>(info.param));
    });

class TwoPointCrossoverProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(TwoPointCrossoverProperty, MaterialConservation) {
  const auto [d, k, phi] = GetParam();
  Rng rng(3000 + d);
  for (int trial = 0; trial < 40; ++trial) {
    const Projection a = Projection::Random(d, k, phi, rng);
    const Projection b = Projection::Random(d, k, phi, rng);
    const auto [c1, c2] = TwoPointCrossover(a, b, rng);
    // Total dimensionality is conserved even when split infeasibly.
    EXPECT_EQ(c1.Dimensionality() + c2.Dimensionality(), 2 * k);
    // Positionwise the children are a permutation of the parents.
    for (size_t pos = 0; pos < d; ++pos) {
      std::multiset<int64_t> parents;
      std::multiset<int64_t> children;
      parents.insert(a.IsSpecified(pos) ? a.CellAt(pos) : -1);
      parents.insert(b.IsSpecified(pos) ? b.CellAt(pos) : -1);
      children.insert(c1.IsSpecified(pos) ? c1.CellAt(pos) : -1);
      children.insert(c2.IsSpecified(pos) ? c2.CellAt(pos) : -1);
      EXPECT_EQ(parents, children);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TwoPointCrossoverProperty,
    ::testing::Values(Shape{4, 2, 3}, Shape{10, 3, 5}, Shape{16, 8, 4},
                      Shape{32, 4, 10}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_phi" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace hido
