// Compile-FAIL sample for Clang Thread Safety Analysis.
//
// This translation unit is deliberately wrong: `count_` is declared
// HIDO_GUARDED_BY(mu_) but Increment() touches it without holding the
// mutex. It is never part of the normal build; the `thread_safety_fail`
// ctest (Clang only, WILL_FAIL) compiles it with
// -Wthread-safety -Werror=thread-safety and asserts the compiler rejects
// it — proving the analysis is armed, not silently disabled. The matching
// thread_safety_ok.cc is the positive control.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hido {

class MisguardedCounter {
 public:
  // BUG (intentional): reads and writes count_ without mu_.
  void Increment() { ++count_; }

  int Get() const {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  int count_ HIDO_GUARDED_BY(mu_) = 0;
};

int TouchIt() {
  MisguardedCounter counter;
  counter.Increment();
  return counter.Get();
}

}  // namespace hido
