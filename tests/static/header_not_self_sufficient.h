#ifndef HIDO_TESTS_STATIC_HEADER_NOT_SELF_SUFFICIENT_H_
#define HIDO_TESTS_STATIC_HEADER_NOT_SELF_SUFFICIENT_H_

// Deliberately NOT self-sufficient: uses std::string without including
// <string>. The header_self_sufficient_fail ctest compiles this file the
// same way the per-header self-sufficiency tests compile every src/
// header, and is marked WILL_FAIL — proving the harness rejects a header
// that leans on its includers for declarations.

namespace hido {

std::string MissingIncludeForThisReturnType();  // hido-lint: allow(doc-comment)

}  // namespace hido

#endif  // HIDO_TESTS_STATIC_HEADER_NOT_SELF_SUFFICIENT_H_
