// Positive control for the thread-safety compile-fail test.
//
// Identical shape to thread_safety_fail.cc but correctly locked; the
// `thread_safety_ok` ctest (Clang only) compiles it with
// -Wthread-safety -Werror=thread-safety and must succeed. If this one
// fails, the harness flags (include paths, warning spelling) are broken —
// which would make thread_safety_fail pass for the wrong reason.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hido {

class GuardedCounter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    ++count_;
  }

  int Get() const {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  int count_ HIDO_GUARDED_BY(mu_) = 0;
};

int TouchIt() {
  GuardedCounter counter;
  counter.Increment();
  return counter.Get();
}

}  // namespace hido
