file(REMOVE_RECURSE
  "CMakeFiles/hido_baselines.dir/db_outlier.cc.o"
  "CMakeFiles/hido_baselines.dir/db_outlier.cc.o.d"
  "CMakeFiles/hido_baselines.dir/distance.cc.o"
  "CMakeFiles/hido_baselines.dir/distance.cc.o.d"
  "CMakeFiles/hido_baselines.dir/knn_outlier.cc.o"
  "CMakeFiles/hido_baselines.dir/knn_outlier.cc.o.d"
  "CMakeFiles/hido_baselines.dir/lof.cc.o"
  "CMakeFiles/hido_baselines.dir/lof.cc.o.d"
  "CMakeFiles/hido_baselines.dir/vptree.cc.o"
  "CMakeFiles/hido_baselines.dir/vptree.cc.o.d"
  "libhido_baselines.a"
  "libhido_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hido_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
