file(REMOVE_RECURSE
  "libhido_baselines.a"
)
