
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/db_outlier.cc" "src/baselines/CMakeFiles/hido_baselines.dir/db_outlier.cc.o" "gcc" "src/baselines/CMakeFiles/hido_baselines.dir/db_outlier.cc.o.d"
  "/root/repo/src/baselines/distance.cc" "src/baselines/CMakeFiles/hido_baselines.dir/distance.cc.o" "gcc" "src/baselines/CMakeFiles/hido_baselines.dir/distance.cc.o.d"
  "/root/repo/src/baselines/knn_outlier.cc" "src/baselines/CMakeFiles/hido_baselines.dir/knn_outlier.cc.o" "gcc" "src/baselines/CMakeFiles/hido_baselines.dir/knn_outlier.cc.o.d"
  "/root/repo/src/baselines/lof.cc" "src/baselines/CMakeFiles/hido_baselines.dir/lof.cc.o" "gcc" "src/baselines/CMakeFiles/hido_baselines.dir/lof.cc.o.d"
  "/root/repo/src/baselines/vptree.cc" "src/baselines/CMakeFiles/hido_baselines.dir/vptree.cc.o" "gcc" "src/baselines/CMakeFiles/hido_baselines.dir/vptree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hido_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hido_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
