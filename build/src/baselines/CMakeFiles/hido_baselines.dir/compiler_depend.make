# Empty compiler generated dependencies file for hido_baselines.
# This may be replaced when dependencies are built.
