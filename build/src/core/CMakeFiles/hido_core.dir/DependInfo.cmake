
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/best_set.cc" "src/core/CMakeFiles/hido_core.dir/best_set.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/best_set.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/core/CMakeFiles/hido_core.dir/brute_force.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/brute_force.cc.o.d"
  "/root/repo/src/core/candidate_search.cc" "src/core/CMakeFiles/hido_core.dir/candidate_search.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/candidate_search.cc.o.d"
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/hido_core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/detector.cc.o.d"
  "/root/repo/src/core/evolutionary_search.cc" "src/core/CMakeFiles/hido_core.dir/evolutionary_search.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/evolutionary_search.cc.o.d"
  "/root/repo/src/core/genetic/convergence.cc" "src/core/CMakeFiles/hido_core.dir/genetic/convergence.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/genetic/convergence.cc.o.d"
  "/root/repo/src/core/genetic/crossover.cc" "src/core/CMakeFiles/hido_core.dir/genetic/crossover.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/genetic/crossover.cc.o.d"
  "/root/repo/src/core/genetic/mutation.cc" "src/core/CMakeFiles/hido_core.dir/genetic/mutation.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/genetic/mutation.cc.o.d"
  "/root/repo/src/core/genetic/selection.cc" "src/core/CMakeFiles/hido_core.dir/genetic/selection.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/genetic/selection.cc.o.d"
  "/root/repo/src/core/local_search.cc" "src/core/CMakeFiles/hido_core.dir/local_search.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/local_search.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/hido_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/objective.cc" "src/core/CMakeFiles/hido_core.dir/objective.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/objective.cc.o.d"
  "/root/repo/src/core/parameter_advisor.cc" "src/core/CMakeFiles/hido_core.dir/parameter_advisor.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/parameter_advisor.cc.o.d"
  "/root/repo/src/core/postprocess.cc" "src/core/CMakeFiles/hido_core.dir/postprocess.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/postprocess.cc.o.d"
  "/root/repo/src/core/projection.cc" "src/core/CMakeFiles/hido_core.dir/projection.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/projection.cc.o.d"
  "/root/repo/src/core/report_io.cc" "src/core/CMakeFiles/hido_core.dir/report_io.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/report_io.cc.o.d"
  "/root/repo/src/core/scoring.cc" "src/core/CMakeFiles/hido_core.dir/scoring.cc.o" "gcc" "src/core/CMakeFiles/hido_core.dir/scoring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hido_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hido_data.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/hido_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
