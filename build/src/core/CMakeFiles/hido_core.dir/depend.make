# Empty dependencies file for hido_core.
# This may be replaced when dependencies are built.
