file(REMOVE_RECURSE
  "libhido_core.a"
)
