# Empty compiler generated dependencies file for hido_common.
# This may be replaced when dependencies are built.
