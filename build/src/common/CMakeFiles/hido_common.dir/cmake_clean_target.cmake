file(REMOVE_RECURSE
  "libhido_common.a"
)
