file(REMOVE_RECURSE
  "CMakeFiles/hido_common.dir/bitset.cc.o"
  "CMakeFiles/hido_common.dir/bitset.cc.o.d"
  "CMakeFiles/hido_common.dir/flags.cc.o"
  "CMakeFiles/hido_common.dir/flags.cc.o.d"
  "CMakeFiles/hido_common.dir/logging.cc.o"
  "CMakeFiles/hido_common.dir/logging.cc.o.d"
  "CMakeFiles/hido_common.dir/parallel.cc.o"
  "CMakeFiles/hido_common.dir/parallel.cc.o.d"
  "CMakeFiles/hido_common.dir/rng.cc.o"
  "CMakeFiles/hido_common.dir/rng.cc.o.d"
  "CMakeFiles/hido_common.dir/stats.cc.o"
  "CMakeFiles/hido_common.dir/stats.cc.o.d"
  "CMakeFiles/hido_common.dir/status.cc.o"
  "CMakeFiles/hido_common.dir/status.cc.o.d"
  "CMakeFiles/hido_common.dir/string_util.cc.o"
  "CMakeFiles/hido_common.dir/string_util.cc.o.d"
  "libhido_common.a"
  "libhido_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hido_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
