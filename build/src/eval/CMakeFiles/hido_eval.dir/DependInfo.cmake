
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/curves.cc" "src/eval/CMakeFiles/hido_eval.dir/curves.cc.o" "gcc" "src/eval/CMakeFiles/hido_eval.dir/curves.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/hido_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/hido_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/hido_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/hido_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/eval/CMakeFiles/hido_eval.dir/table.cc.o" "gcc" "src/eval/CMakeFiles/hido_eval.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hido_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hido_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/hido_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hido_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
