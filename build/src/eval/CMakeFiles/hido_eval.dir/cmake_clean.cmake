file(REMOVE_RECURSE
  "CMakeFiles/hido_eval.dir/curves.cc.o"
  "CMakeFiles/hido_eval.dir/curves.cc.o.d"
  "CMakeFiles/hido_eval.dir/experiment.cc.o"
  "CMakeFiles/hido_eval.dir/experiment.cc.o.d"
  "CMakeFiles/hido_eval.dir/metrics.cc.o"
  "CMakeFiles/hido_eval.dir/metrics.cc.o.d"
  "CMakeFiles/hido_eval.dir/table.cc.o"
  "CMakeFiles/hido_eval.dir/table.cc.o.d"
  "libhido_eval.a"
  "libhido_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hido_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
