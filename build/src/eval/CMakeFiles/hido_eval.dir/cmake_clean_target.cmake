file(REMOVE_RECURSE
  "libhido_eval.a"
)
