# Empty dependencies file for hido_eval.
# This may be replaced when dependencies are built.
