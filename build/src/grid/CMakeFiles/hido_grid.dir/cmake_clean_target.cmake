file(REMOVE_RECURSE
  "libhido_grid.a"
)
