# Empty compiler generated dependencies file for hido_grid.
# This may be replaced when dependencies are built.
