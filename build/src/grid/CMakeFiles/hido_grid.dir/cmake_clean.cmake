file(REMOVE_RECURSE
  "CMakeFiles/hido_grid.dir/cube_counter.cc.o"
  "CMakeFiles/hido_grid.dir/cube_counter.cc.o.d"
  "CMakeFiles/hido_grid.dir/grid_model.cc.o"
  "CMakeFiles/hido_grid.dir/grid_model.cc.o.d"
  "CMakeFiles/hido_grid.dir/quantizer.cc.o"
  "CMakeFiles/hido_grid.dir/quantizer.cc.o.d"
  "CMakeFiles/hido_grid.dir/sparsity.cc.o"
  "CMakeFiles/hido_grid.dir/sparsity.cc.o.d"
  "libhido_grid.a"
  "libhido_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hido_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
