
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/cube_counter.cc" "src/grid/CMakeFiles/hido_grid.dir/cube_counter.cc.o" "gcc" "src/grid/CMakeFiles/hido_grid.dir/cube_counter.cc.o.d"
  "/root/repo/src/grid/grid_model.cc" "src/grid/CMakeFiles/hido_grid.dir/grid_model.cc.o" "gcc" "src/grid/CMakeFiles/hido_grid.dir/grid_model.cc.o.d"
  "/root/repo/src/grid/quantizer.cc" "src/grid/CMakeFiles/hido_grid.dir/quantizer.cc.o" "gcc" "src/grid/CMakeFiles/hido_grid.dir/quantizer.cc.o.d"
  "/root/repo/src/grid/sparsity.cc" "src/grid/CMakeFiles/hido_grid.dir/sparsity.cc.o" "gcc" "src/grid/CMakeFiles/hido_grid.dir/sparsity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hido_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hido_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
