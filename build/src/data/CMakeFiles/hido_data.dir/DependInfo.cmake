
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/column_stats.cc" "src/data/CMakeFiles/hido_data.dir/column_stats.cc.o" "gcc" "src/data/CMakeFiles/hido_data.dir/column_stats.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/hido_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/hido_data.dir/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/hido_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/hido_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/encoding.cc" "src/data/CMakeFiles/hido_data.dir/encoding.cc.o" "gcc" "src/data/CMakeFiles/hido_data.dir/encoding.cc.o.d"
  "/root/repo/src/data/generators/arrhythmia_like.cc" "src/data/CMakeFiles/hido_data.dir/generators/arrhythmia_like.cc.o" "gcc" "src/data/CMakeFiles/hido_data.dir/generators/arrhythmia_like.cc.o.d"
  "/root/repo/src/data/generators/housing_like.cc" "src/data/CMakeFiles/hido_data.dir/generators/housing_like.cc.o" "gcc" "src/data/CMakeFiles/hido_data.dir/generators/housing_like.cc.o.d"
  "/root/repo/src/data/generators/synthetic.cc" "src/data/CMakeFiles/hido_data.dir/generators/synthetic.cc.o" "gcc" "src/data/CMakeFiles/hido_data.dir/generators/synthetic.cc.o.d"
  "/root/repo/src/data/generators/uci_like.cc" "src/data/CMakeFiles/hido_data.dir/generators/uci_like.cc.o" "gcc" "src/data/CMakeFiles/hido_data.dir/generators/uci_like.cc.o.d"
  "/root/repo/src/data/transforms.cc" "src/data/CMakeFiles/hido_data.dir/transforms.cc.o" "gcc" "src/data/CMakeFiles/hido_data.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hido_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
