file(REMOVE_RECURSE
  "CMakeFiles/hido_data.dir/column_stats.cc.o"
  "CMakeFiles/hido_data.dir/column_stats.cc.o.d"
  "CMakeFiles/hido_data.dir/csv.cc.o"
  "CMakeFiles/hido_data.dir/csv.cc.o.d"
  "CMakeFiles/hido_data.dir/dataset.cc.o"
  "CMakeFiles/hido_data.dir/dataset.cc.o.d"
  "CMakeFiles/hido_data.dir/encoding.cc.o"
  "CMakeFiles/hido_data.dir/encoding.cc.o.d"
  "CMakeFiles/hido_data.dir/generators/arrhythmia_like.cc.o"
  "CMakeFiles/hido_data.dir/generators/arrhythmia_like.cc.o.d"
  "CMakeFiles/hido_data.dir/generators/housing_like.cc.o"
  "CMakeFiles/hido_data.dir/generators/housing_like.cc.o.d"
  "CMakeFiles/hido_data.dir/generators/synthetic.cc.o"
  "CMakeFiles/hido_data.dir/generators/synthetic.cc.o.d"
  "CMakeFiles/hido_data.dir/generators/uci_like.cc.o"
  "CMakeFiles/hido_data.dir/generators/uci_like.cc.o.d"
  "CMakeFiles/hido_data.dir/transforms.cc.o"
  "CMakeFiles/hido_data.dir/transforms.cc.o.d"
  "libhido_data.a"
  "libhido_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hido_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
