file(REMOVE_RECURSE
  "libhido_data.a"
)
