# Empty dependencies file for hido_data.
# This may be replaced when dependencies are built.
