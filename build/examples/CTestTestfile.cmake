# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_housing "/root/repo/build/examples/housing_analysis")
set_tests_properties(example_housing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fraud "/root/repo/build/examples/fraud_detection")
set_tests_properties(example_fraud PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_intrusion "/root/repo/build/examples/network_intrusion")
set_tests_properties(example_intrusion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
