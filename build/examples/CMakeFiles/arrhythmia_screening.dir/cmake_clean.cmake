file(REMOVE_RECURSE
  "CMakeFiles/arrhythmia_screening.dir/arrhythmia_screening.cpp.o"
  "CMakeFiles/arrhythmia_screening.dir/arrhythmia_screening.cpp.o.d"
  "arrhythmia_screening"
  "arrhythmia_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrhythmia_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
