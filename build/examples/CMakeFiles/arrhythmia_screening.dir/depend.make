# Empty dependencies file for arrhythmia_screening.
# This may be replaced when dependencies are built.
