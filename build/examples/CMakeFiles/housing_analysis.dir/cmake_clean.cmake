file(REMOVE_RECURSE
  "CMakeFiles/housing_analysis.dir/housing_analysis.cpp.o"
  "CMakeFiles/housing_analysis.dir/housing_analysis.cpp.o.d"
  "housing_analysis"
  "housing_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/housing_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
