# Empty dependencies file for housing_analysis.
# This may be replaced when dependencies are built.
