# Empty dependencies file for network_intrusion.
# This may be replaced when dependencies are built.
