file(REMOVE_RECURSE
  "CMakeFiles/fraud_detection.dir/fraud_detection.cpp.o"
  "CMakeFiles/fraud_detection.dir/fraud_detection.cpp.o.d"
  "fraud_detection"
  "fraud_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
