# Empty dependencies file for hido-gen.
# This may be replaced when dependencies are built.
