file(REMOVE_RECURSE
  "CMakeFiles/hido-gen.dir/hido_gen.cc.o"
  "CMakeFiles/hido-gen.dir/hido_gen.cc.o.d"
  "hido-gen"
  "hido-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hido-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
