# Empty dependencies file for hido.
# This may be replaced when dependencies are built.
