file(REMOVE_RECURSE
  "CMakeFiles/hido.dir/hido_cli.cc.o"
  "CMakeFiles/hido.dir/hido_cli.cc.o.d"
  "hido"
  "hido.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hido.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
