# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_advise "/root/repo/build/tools/hido" "advise" "--rows" "10000" "--dims" "50")
set_tests_properties(cli_advise PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/hido")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_detect_help "/root/repo/build/tools/hido" "detect" "--help")
set_tests_properties(cli_detect_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_score_help "/root/repo/build/tools/hido" "score" "--help")
set_tests_properties(cli_score_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen "/root/repo/build/tools/hido-gen" "subspace" "--rows" "400" "--dims" "16" "--outliers" "4" "--out" "/root/repo/build/cli_demo.csv")
set_tests_properties(cli_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_detect_flow "/root/repo/build/tools/hido" "detect" "--input" "/root/repo/build/cli_demo.csv" "--phi" "5" "--k" "2" "--m" "8" "--restarts" "6" "--explain" "1" "--save-model" "/root/repo/build/cli_demo.hido")
set_tests_properties(cli_detect_flow PROPERTIES  DEPENDS "cli_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_score_flow "/root/repo/build/tools/hido" "score" "--input" "/root/repo/build/cli_demo.csv" "--model" "/root/repo/build/cli_demo.hido" "--threshold" "-3")
set_tests_properties(cli_score_flow PROPERTIES  DEPENDS "cli_detect_flow" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
