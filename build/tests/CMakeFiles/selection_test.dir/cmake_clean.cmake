file(REMOVE_RECURSE
  "CMakeFiles/selection_test.dir/core/selection_test.cc.o"
  "CMakeFiles/selection_test.dir/core/selection_test.cc.o.d"
  "selection_test"
  "selection_test.pdb"
  "selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
