file(REMOVE_RECURSE
  "CMakeFiles/grid_model_test.dir/grid/grid_model_test.cc.o"
  "CMakeFiles/grid_model_test.dir/grid/grid_model_test.cc.o.d"
  "grid_model_test"
  "grid_model_test.pdb"
  "grid_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
