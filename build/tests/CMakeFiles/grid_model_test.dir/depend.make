# Empty dependencies file for grid_model_test.
# This may be replaced when dependencies are built.
