file(REMOVE_RECURSE
  "CMakeFiles/curves_test.dir/eval/curves_test.cc.o"
  "CMakeFiles/curves_test.dir/eval/curves_test.cc.o.d"
  "curves_test"
  "curves_test.pdb"
  "curves_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curves_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
