# Empty compiler generated dependencies file for scoring_test.
# This may be replaced when dependencies are built.
