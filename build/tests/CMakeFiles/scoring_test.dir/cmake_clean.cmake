file(REMOVE_RECURSE
  "CMakeFiles/scoring_test.dir/core/scoring_test.cc.o"
  "CMakeFiles/scoring_test.dir/core/scoring_test.cc.o.d"
  "scoring_test"
  "scoring_test.pdb"
  "scoring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
