file(REMOVE_RECURSE
  "CMakeFiles/encoding_test.dir/data/encoding_test.cc.o"
  "CMakeFiles/encoding_test.dir/data/encoding_test.cc.o.d"
  "encoding_test"
  "encoding_test.pdb"
  "encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
