# Empty compiler generated dependencies file for best_set_test.
# This may be replaced when dependencies are built.
