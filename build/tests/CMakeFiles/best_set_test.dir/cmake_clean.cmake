file(REMOVE_RECURSE
  "CMakeFiles/best_set_test.dir/core/best_set_test.cc.o"
  "CMakeFiles/best_set_test.dir/core/best_set_test.cc.o.d"
  "best_set_test"
  "best_set_test.pdb"
  "best_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
