# Empty compiler generated dependencies file for timer_test.
# This may be replaced when dependencies are built.
