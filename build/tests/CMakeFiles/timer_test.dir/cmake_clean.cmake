file(REMOVE_RECURSE
  "CMakeFiles/timer_test.dir/common/timer_test.cc.o"
  "CMakeFiles/timer_test.dir/common/timer_test.cc.o.d"
  "timer_test"
  "timer_test.pdb"
  "timer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
