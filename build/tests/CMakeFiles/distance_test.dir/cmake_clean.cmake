file(REMOVE_RECURSE
  "CMakeFiles/distance_test.dir/baselines/distance_test.cc.o"
  "CMakeFiles/distance_test.dir/baselines/distance_test.cc.o.d"
  "distance_test"
  "distance_test.pdb"
  "distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
