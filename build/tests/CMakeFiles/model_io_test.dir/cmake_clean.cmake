file(REMOVE_RECURSE
  "CMakeFiles/model_io_test.dir/core/model_io_test.cc.o"
  "CMakeFiles/model_io_test.dir/core/model_io_test.cc.o.d"
  "model_io_test"
  "model_io_test.pdb"
  "model_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
