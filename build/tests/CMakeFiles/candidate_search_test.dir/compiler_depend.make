# Empty compiler generated dependencies file for candidate_search_test.
# This may be replaced when dependencies are built.
