file(REMOVE_RECURSE
  "CMakeFiles/candidate_search_test.dir/core/candidate_search_test.cc.o"
  "CMakeFiles/candidate_search_test.dir/core/candidate_search_test.cc.o.d"
  "candidate_search_test"
  "candidate_search_test.pdb"
  "candidate_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
