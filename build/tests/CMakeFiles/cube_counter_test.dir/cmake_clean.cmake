file(REMOVE_RECURSE
  "CMakeFiles/cube_counter_test.dir/grid/cube_counter_test.cc.o"
  "CMakeFiles/cube_counter_test.dir/grid/cube_counter_test.cc.o.d"
  "cube_counter_test"
  "cube_counter_test.pdb"
  "cube_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
