# Empty dependencies file for cube_counter_test.
# This may be replaced when dependencies are built.
