# Empty compiler generated dependencies file for sparsity_test.
# This may be replaced when dependencies are built.
