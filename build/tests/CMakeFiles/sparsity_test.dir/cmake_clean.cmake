file(REMOVE_RECURSE
  "CMakeFiles/sparsity_test.dir/grid/sparsity_test.cc.o"
  "CMakeFiles/sparsity_test.dir/grid/sparsity_test.cc.o.d"
  "sparsity_test"
  "sparsity_test.pdb"
  "sparsity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
