file(REMOVE_RECURSE
  "CMakeFiles/postprocess_test.dir/core/postprocess_test.cc.o"
  "CMakeFiles/postprocess_test.dir/core/postprocess_test.cc.o.d"
  "postprocess_test"
  "postprocess_test.pdb"
  "postprocess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
