# Empty compiler generated dependencies file for logging_test.
# This may be replaced when dependencies are built.
