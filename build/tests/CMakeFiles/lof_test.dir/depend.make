# Empty dependencies file for lof_test.
# This may be replaced when dependencies are built.
