file(REMOVE_RECURSE
  "CMakeFiles/lof_test.dir/baselines/lof_test.cc.o"
  "CMakeFiles/lof_test.dir/baselines/lof_test.cc.o.d"
  "lof_test"
  "lof_test.pdb"
  "lof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
