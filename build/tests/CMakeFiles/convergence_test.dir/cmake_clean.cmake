file(REMOVE_RECURSE
  "CMakeFiles/convergence_test.dir/core/convergence_test.cc.o"
  "CMakeFiles/convergence_test.dir/core/convergence_test.cc.o.d"
  "convergence_test"
  "convergence_test.pdb"
  "convergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
