# Empty dependencies file for mutation_test.
# This may be replaced when dependencies are built.
