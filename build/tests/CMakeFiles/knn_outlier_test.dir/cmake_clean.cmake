file(REMOVE_RECURSE
  "CMakeFiles/knn_outlier_test.dir/baselines/knn_outlier_test.cc.o"
  "CMakeFiles/knn_outlier_test.dir/baselines/knn_outlier_test.cc.o.d"
  "knn_outlier_test"
  "knn_outlier_test.pdb"
  "knn_outlier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_outlier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
