# Empty compiler generated dependencies file for knn_outlier_test.
# This may be replaced when dependencies are built.
