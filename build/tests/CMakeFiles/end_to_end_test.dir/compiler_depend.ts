# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for end_to_end_test.
