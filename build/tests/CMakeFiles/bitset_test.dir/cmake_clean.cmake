file(REMOVE_RECURSE
  "CMakeFiles/bitset_test.dir/common/bitset_test.cc.o"
  "CMakeFiles/bitset_test.dir/common/bitset_test.cc.o.d"
  "bitset_test"
  "bitset_test.pdb"
  "bitset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
