# Empty compiler generated dependencies file for crossover_property_test.
# This may be replaced when dependencies are built.
