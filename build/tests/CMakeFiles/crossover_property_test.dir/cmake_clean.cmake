file(REMOVE_RECURSE
  "CMakeFiles/crossover_property_test.dir/property/crossover_property_test.cc.o"
  "CMakeFiles/crossover_property_test.dir/property/crossover_property_test.cc.o.d"
  "crossover_property_test"
  "crossover_property_test.pdb"
  "crossover_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
