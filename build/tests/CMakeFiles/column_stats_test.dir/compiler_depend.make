# Empty compiler generated dependencies file for column_stats_test.
# This may be replaced when dependencies are built.
