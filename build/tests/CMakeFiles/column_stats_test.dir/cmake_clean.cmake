file(REMOVE_RECURSE
  "CMakeFiles/column_stats_test.dir/data/column_stats_test.cc.o"
  "CMakeFiles/column_stats_test.dir/data/column_stats_test.cc.o.d"
  "column_stats_test"
  "column_stats_test.pdb"
  "column_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
