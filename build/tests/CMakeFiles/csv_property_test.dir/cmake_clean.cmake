file(REMOVE_RECURSE
  "CMakeFiles/csv_property_test.dir/property/csv_property_test.cc.o"
  "CMakeFiles/csv_property_test.dir/property/csv_property_test.cc.o.d"
  "csv_property_test"
  "csv_property_test.pdb"
  "csv_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
