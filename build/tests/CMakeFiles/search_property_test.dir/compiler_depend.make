# Empty compiler generated dependencies file for search_property_test.
# This may be replaced when dependencies are built.
