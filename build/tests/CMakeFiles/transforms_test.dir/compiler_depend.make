# Empty compiler generated dependencies file for transforms_test.
# This may be replaced when dependencies are built.
