file(REMOVE_RECURSE
  "CMakeFiles/objective_test.dir/core/objective_test.cc.o"
  "CMakeFiles/objective_test.dir/core/objective_test.cc.o.d"
  "objective_test"
  "objective_test.pdb"
  "objective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
