# Empty dependencies file for objective_test.
# This may be replaced when dependencies are built.
