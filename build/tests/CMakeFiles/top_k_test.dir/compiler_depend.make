# Empty compiler generated dependencies file for top_k_test.
# This may be replaced when dependencies are built.
