file(REMOVE_RECURSE
  "CMakeFiles/top_k_test.dir/common/top_k_test.cc.o"
  "CMakeFiles/top_k_test.dir/common/top_k_test.cc.o.d"
  "top_k_test"
  "top_k_test.pdb"
  "top_k_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/top_k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
