# Empty compiler generated dependencies file for quantizer_test.
# This may be replaced when dependencies are built.
