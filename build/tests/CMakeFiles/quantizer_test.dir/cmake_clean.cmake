file(REMOVE_RECURSE
  "CMakeFiles/quantizer_test.dir/grid/quantizer_test.cc.o"
  "CMakeFiles/quantizer_test.dir/grid/quantizer_test.cc.o.d"
  "quantizer_test"
  "quantizer_test.pdb"
  "quantizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
