file(REMOVE_RECURSE
  "CMakeFiles/db_outlier_test.dir/baselines/db_outlier_test.cc.o"
  "CMakeFiles/db_outlier_test.dir/baselines/db_outlier_test.cc.o.d"
  "db_outlier_test"
  "db_outlier_test.pdb"
  "db_outlier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_outlier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
