# Empty dependencies file for db_outlier_test.
# This may be replaced when dependencies are built.
