file(REMOVE_RECURSE
  "CMakeFiles/detector_property_test.dir/property/detector_property_test.cc.o"
  "CMakeFiles/detector_property_test.dir/property/detector_property_test.cc.o.d"
  "detector_property_test"
  "detector_property_test.pdb"
  "detector_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
