# Empty dependencies file for detector_property_test.
# This may be replaced when dependencies are built.
