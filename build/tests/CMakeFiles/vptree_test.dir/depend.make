# Empty dependencies file for vptree_test.
# This may be replaced when dependencies are built.
