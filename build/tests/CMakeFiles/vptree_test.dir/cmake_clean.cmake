file(REMOVE_RECURSE
  "CMakeFiles/vptree_test.dir/baselines/vptree_test.cc.o"
  "CMakeFiles/vptree_test.dir/baselines/vptree_test.cc.o.d"
  "vptree_test"
  "vptree_test.pdb"
  "vptree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vptree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
