# Empty dependencies file for evolutionary_search_test.
# This may be replaced when dependencies are built.
