file(REMOVE_RECURSE
  "CMakeFiles/evolutionary_search_test.dir/core/evolutionary_search_test.cc.o"
  "CMakeFiles/evolutionary_search_test.dir/core/evolutionary_search_test.cc.o.d"
  "evolutionary_search_test"
  "evolutionary_search_test.pdb"
  "evolutionary_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolutionary_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
