# Empty compiler generated dependencies file for parameter_advisor_test.
# This may be replaced when dependencies are built.
