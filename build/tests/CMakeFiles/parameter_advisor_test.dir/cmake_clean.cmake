file(REMOVE_RECURSE
  "CMakeFiles/parameter_advisor_test.dir/core/parameter_advisor_test.cc.o"
  "CMakeFiles/parameter_advisor_test.dir/core/parameter_advisor_test.cc.o.d"
  "parameter_advisor_test"
  "parameter_advisor_test.pdb"
  "parameter_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
