file(REMOVE_RECURSE
  "CMakeFiles/crossover_test.dir/core/crossover_test.cc.o"
  "CMakeFiles/crossover_test.dir/core/crossover_test.cc.o.d"
  "crossover_test"
  "crossover_test.pdb"
  "crossover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
