# Empty compiler generated dependencies file for projection_test.
# This may be replaced when dependencies are built.
