file(REMOVE_RECURSE
  "CMakeFiles/projection_test.dir/core/projection_test.cc.o"
  "CMakeFiles/projection_test.dir/core/projection_test.cc.o.d"
  "projection_test"
  "projection_test.pdb"
  "projection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
