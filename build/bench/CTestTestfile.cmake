# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig1_smoke "/root/repo/build/bench/fig1_subspace_views")
set_tests_properties(bench_fig1_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_phi_k_smoke "/root/repo/build/bench/ablation_phi_k")
set_tests_properties(bench_phi_k_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_restarts_smoke "/root/repo/build/bench/ablation_restarts")
set_tests_properties(bench_restarts_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table1_smoke "/root/repo/build/bench/table1_performance")
set_tests_properties(bench_table1_smoke PROPERTIES  ENVIRONMENT "HIDO_BRUTE_BUDGET=5" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table2_smoke "/root/repo/build/bench/table2_arrhythmia")
set_tests_properties(bench_table2_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
