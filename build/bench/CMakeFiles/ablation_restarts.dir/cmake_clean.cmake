file(REMOVE_RECURSE
  "CMakeFiles/ablation_restarts.dir/ablation_restarts.cc.o"
  "CMakeFiles/ablation_restarts.dir/ablation_restarts.cc.o.d"
  "ablation_restarts"
  "ablation_restarts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_restarts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
