# Empty compiler generated dependencies file for ablation_restarts.
# This may be replaced when dependencies are built.
