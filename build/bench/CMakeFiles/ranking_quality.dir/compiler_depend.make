# Empty compiler generated dependencies file for ranking_quality.
# This may be replaced when dependencies are built.
