file(REMOVE_RECURSE
  "CMakeFiles/ranking_quality.dir/ranking_quality.cc.o"
  "CMakeFiles/ranking_quality.dir/ranking_quality.cc.o.d"
  "ranking_quality"
  "ranking_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
