file(REMOVE_RECURSE
  "CMakeFiles/micro_baselines.dir/micro_baselines.cc.o"
  "CMakeFiles/micro_baselines.dir/micro_baselines.cc.o.d"
  "micro_baselines"
  "micro_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
