# Empty compiler generated dependencies file for micro_baselines.
# This may be replaced when dependencies are built.
