file(REMOVE_RECURSE
  "CMakeFiles/fig1_subspace_views.dir/fig1_subspace_views.cc.o"
  "CMakeFiles/fig1_subspace_views.dir/fig1_subspace_views.cc.o.d"
  "fig1_subspace_views"
  "fig1_subspace_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_subspace_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
