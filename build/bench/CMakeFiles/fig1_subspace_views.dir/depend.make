# Empty dependencies file for fig1_subspace_views.
# This may be replaced when dependencies are built.
