file(REMOVE_RECURSE
  "CMakeFiles/micro_genetic.dir/micro_genetic.cc.o"
  "CMakeFiles/micro_genetic.dir/micro_genetic.cc.o.d"
  "micro_genetic"
  "micro_genetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_genetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
