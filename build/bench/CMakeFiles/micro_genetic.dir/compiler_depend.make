# Empty compiler generated dependencies file for micro_genetic.
# This may be replaced when dependencies are built.
