# Empty dependencies file for scaling_bruteforce.
# This may be replaced when dependencies are built.
