file(REMOVE_RECURSE
  "CMakeFiles/scaling_bruteforce.dir/scaling_bruteforce.cc.o"
  "CMakeFiles/scaling_bruteforce.dir/scaling_bruteforce.cc.o.d"
  "scaling_bruteforce"
  "scaling_bruteforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
