file(REMOVE_RECURSE
  "CMakeFiles/ablation_search_methods.dir/ablation_search_methods.cc.o"
  "CMakeFiles/ablation_search_methods.dir/ablation_search_methods.cc.o.d"
  "ablation_search_methods"
  "ablation_search_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
