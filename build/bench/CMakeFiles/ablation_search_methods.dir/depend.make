# Empty dependencies file for ablation_search_methods.
# This may be replaced when dependencies are built.
