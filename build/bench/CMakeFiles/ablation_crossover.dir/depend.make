# Empty dependencies file for ablation_crossover.
# This may be replaced when dependencies are built.
