file(REMOVE_RECURSE
  "CMakeFiles/ablation_crossover.dir/ablation_crossover.cc.o"
  "CMakeFiles/ablation_crossover.dir/ablation_crossover.cc.o.d"
  "ablation_crossover"
  "ablation_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
