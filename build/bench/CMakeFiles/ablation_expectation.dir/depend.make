# Empty dependencies file for ablation_expectation.
# This may be replaced when dependencies are built.
