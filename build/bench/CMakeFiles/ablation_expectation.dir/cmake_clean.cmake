file(REMOVE_RECURSE
  "CMakeFiles/ablation_expectation.dir/ablation_expectation.cc.o"
  "CMakeFiles/ablation_expectation.dir/ablation_expectation.cc.o.d"
  "ablation_expectation"
  "ablation_expectation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_expectation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
