
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_expectation.cc" "bench/CMakeFiles/ablation_expectation.dir/ablation_expectation.cc.o" "gcc" "bench/CMakeFiles/ablation_expectation.dir/ablation_expectation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/hido_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hido_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hido_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/hido_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hido_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hido_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
