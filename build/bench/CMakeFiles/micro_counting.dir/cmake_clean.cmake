file(REMOVE_RECURSE
  "CMakeFiles/micro_counting.dir/micro_counting.cc.o"
  "CMakeFiles/micro_counting.dir/micro_counting.cc.o.d"
  "micro_counting"
  "micro_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
