# Empty dependencies file for table1_performance.
# This may be replaced when dependencies are built.
