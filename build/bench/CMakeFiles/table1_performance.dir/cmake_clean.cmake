file(REMOVE_RECURSE
  "CMakeFiles/table1_performance.dir/table1_performance.cc.o"
  "CMakeFiles/table1_performance.dir/table1_performance.cc.o.d"
  "table1_performance"
  "table1_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
