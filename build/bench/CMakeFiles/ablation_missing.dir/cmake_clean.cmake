file(REMOVE_RECURSE
  "CMakeFiles/ablation_missing.dir/ablation_missing.cc.o"
  "CMakeFiles/ablation_missing.dir/ablation_missing.cc.o.d"
  "ablation_missing"
  "ablation_missing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_missing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
