# Empty compiler generated dependencies file for ablation_missing.
# This may be replaced when dependencies are built.
