# Empty compiler generated dependencies file for table2_arrhythmia.
# This may be replaced when dependencies are built.
