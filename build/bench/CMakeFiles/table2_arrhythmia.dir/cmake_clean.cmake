file(REMOVE_RECURSE
  "CMakeFiles/table2_arrhythmia.dir/table2_arrhythmia.cc.o"
  "CMakeFiles/table2_arrhythmia.dir/table2_arrhythmia.cc.o.d"
  "table2_arrhythmia"
  "table2_arrhythmia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_arrhythmia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
