# Empty compiler generated dependencies file for ablation_phi_k.
# This may be replaced when dependencies are built.
