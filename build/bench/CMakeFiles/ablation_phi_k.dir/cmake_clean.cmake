file(REMOVE_RECURSE
  "CMakeFiles/ablation_phi_k.dir/ablation_phi_k.cc.o"
  "CMakeFiles/ablation_phi_k.dir/ablation_phi_k.cc.o.d"
  "ablation_phi_k"
  "ablation_phi_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phi_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
